// Differential contract of the distributed Bellman–Ford SSSP (apps/sssp):
// on every registry family the distance vector equals the serial Dijkstra
// reference entry for entry (kInfWeight for unreachable nodes), the parent
// arcs form consistent shortest paths, and the whole report is
// bit-identical whether the workload was built and run at 1, 2, or 8
// threads.

#include "apps/sssp.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "util/thread_pool.hpp"

namespace fc::apps {
namespace {

const char* const kSpecs[] = {
    "random_regular:n=96,d=6,seed=3,weights=1..100",
    "harary:n=64,k=5,weights=1..50",
    "watts_strogatz:n=96,k=6,p=0.2,seed=5,weights=1..40",
    "dumbbell:s=24,bridges=3,weights=1..9",
    "rmat:n=128,deg=6,seed=7,largest_cc=1,weights=1..100",
    "torus:rows=8,cols=9",  // unit weights: SSSP degenerates to BFS depths
};

WeightedGraph rebuild_with_pool(const WeightedGraph& g, ThreadPool& pool) {
  const auto edges = g.graph().edge_list();
  std::vector<Weight> weights(g.weights().begin(), g.weights().end());
  return WeightedGraph::from_edges(g.graph().node_count(), edges,
                                   std::move(weights), &pool);
}

/// dist[v] = dist[parent] + w(parent edge) along every parent arc, and the
/// source is its own root.
void expect_consistent_parents(const WeightedGraph& g, const SsspReport& r,
                               NodeId source) {
  EXPECT_EQ(r.parent_arc[source], kInvalidArc);
  for (NodeId v = 0; v < g.graph().node_count(); ++v) {
    const ArcId pa = r.parent_arc[v];
    if (pa == kInvalidArc) {
      EXPECT_TRUE(v == source || r.dist[v] == kInfWeight);
      continue;
    }
    const NodeId p = g.graph().arc_head(pa);
    EXPECT_EQ(r.dist[v], r.dist[p] + g.arc_weight(pa));
  }
}

TEST(DistributedSssp, MatchesDijkstraAcrossFamiliesAndThreadCounts) {
  for (const std::string spec : kSpecs) {
    SCOPED_TRACE(spec);
    const WeightedGraph g = scenario::build_weighted_graph(spec);
    const auto ref = dijkstra(g, 0);
    const SsspReport baseline = distributed_sssp(g, 0);
    EXPECT_TRUE(baseline.finished);
    EXPECT_EQ(baseline.dist, ref);
    expect_consistent_parents(g, baseline, 0);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(threads);
      ThreadPool pool(threads);
      const WeightedGraph gt = rebuild_with_pool(g, pool);
      const SsspReport rep = distributed_sssp(gt, 0);
      // Bit-identical per thread count: distances, parents, AND costs.
      EXPECT_EQ(rep.dist, baseline.dist);
      EXPECT_EQ(rep.parent_arc, baseline.parent_arc);
      EXPECT_EQ(rep.rounds, baseline.rounds);
      EXPECT_EQ(rep.messages, baseline.messages);
      EXPECT_EQ(rep.arc_sends, baseline.arc_sends);
    }
  }
}

TEST(DistributedSssp, MatchesDijkstraFromEverySourceOnSmallGraph) {
  const WeightedGraph g = scenario::build_weighted_graph(
      "clique_path:groups=3,width=5,overlap=2,weights=1..20");
  for (NodeId s = 0; s < g.graph().node_count(); ++s) {
    SCOPED_TRACE(s);
    const auto rep = distributed_sssp(g, s);
    ASSERT_TRUE(rep.finished);
    EXPECT_EQ(rep.dist, dijkstra(g, s));
    expect_consistent_parents(g, rep, s);
  }
}

TEST(DistributedSssp, LargeGraphExercisesParallelRounds) {
  // n >= 512 crosses the engine's parallel-round threshold, so this run
  // (and the TSAN CI job re-running it) covers the concurrent handlers.
  const WeightedGraph g = scenario::build_weighted_graph(
      "random_regular:n=600,d=4,seed=9,weights=1..1000");
  const auto rep = distributed_sssp(g, 0);
  ASSERT_TRUE(rep.finished);
  EXPECT_EQ(rep.dist, dijkstra(g, 0));
  EXPECT_EQ(rep.reached, 600u);
}

TEST(DistributedSssp, UnreachableNodesStayAtInfinity) {
  const WeightedGraph g = scenario::build_weighted_graph(
      "rmat:n=64,deg=3,seed=11,weights=1..9");
  ASSERT_GT(component_count(g.graph()), 1u);
  const auto rep = distributed_sssp(g, 0);
  ASSERT_TRUE(rep.finished);
  EXPECT_EQ(rep.dist, dijkstra(g, 0));
  EXPECT_LT(rep.reached, g.graph().node_count());
  const auto hops = bfs_distances(g.graph(), 0);
  for (NodeId v = 0; v < g.graph().node_count(); ++v)
    EXPECT_EQ(rep.dist[v] == kInfWeight, hops[v] == kUnreached);
}

TEST(DistributedSssp, RoundsTrackHopEccentricityNotWeights) {
  // Weighted path: distances grow with weights but rounds stay at the hop
  // eccentricity + the quiescence tail.
  const WeightedGraph g =
      scenario::build_weighted_graph("path:n=32,weights=100..4000");
  const auto rep = distributed_sssp(g, 0);
  ASSERT_TRUE(rep.finished);
  EXPECT_EQ(rep.dist, dijkstra(g, 0));
  EXPECT_LE(rep.rounds, 31u + 4u);
  EXPECT_GE(rep.max_dist, 31 * 100);
}

TEST(DistributedSssp, BadSourceThrows) {
  const WeightedGraph g = scenario::build_weighted_graph("cycle:n=8");
  EXPECT_THROW(distributed_sssp(g, 8), std::invalid_argument);
}

TEST(DistributedSssp, RunnerReportsReachAndMaxDist) {
  const scenario::ScenarioRunner runner;
  ASSERT_TRUE(runner.is_weighted("sssp"));
  const std::string spec = "circulant:n=40,k=3,weights=1..100";
  const auto r = runner.run_spec("sssp", spec);
  ASSERT_TRUE(r.finished);
  const WeightedGraph g = scenario::build_weighted_graph(spec);
  const auto ref = dijkstra(g, 0);
  Weight max_dist = 0;
  for (const Weight d : ref) max_dist = std::max(max_dist, d);
  EXPECT_NE(r.note.find("reached=40"), std::string::npos) << r.note;
  EXPECT_NE(r.note.find("max_dist=" + std::to_string(max_dist)),
            std::string::npos)
      << r.note;
}

TEST(DistributedSssp, RunnerRestrictsToRootComponent) {
  const scenario::ScenarioRunner runner;
  const auto r = runner.run_spec("sssp", "rmat:n=64,deg=3,seed=11,weights=1..9");
  EXPECT_TRUE(r.finished);
  EXPECT_LT(r.nodes, 64u);
  EXPECT_NE(r.note.find("cc="), std::string::npos);
  // Inside the root component everything is reached.
  EXPECT_NE(r.note.find("reached=" + std::to_string(r.nodes)),
            std::string::npos)
      << r.note;
}

}  // namespace
}  // namespace fc::apps
