#include "apps/aggregation.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace fc::apps {
namespace {

std::vector<AggregateQuery> make_queries(NodeId n, std::size_t count,
                                         Rng& rng) {
  std::vector<AggregateQuery> qs(count);
  for (std::size_t i = 0; i < count; ++i) {
    qs[i].op = static_cast<algo::AggregateOp>(i % 3);
    qs[i].values.resize(n);
    for (auto& v : qs[i].values) v = rng.below(1000) + 1;
  }
  return qs;
}

std::uint64_t reference_answer(const AggregateQuery& q) {
  switch (q.op) {
    case algo::AggregateOp::kMin:
      return *std::min_element(q.values.begin(), q.values.end());
    case algo::AggregateOp::kMax:
      return *std::max_element(q.values.begin(), q.values.end());
    case algo::AggregateOp::kSum:
      return std::accumulate(q.values.begin(), q.values.end(), 0ull);
  }
  return 0;
}

TEST(MultiAggregate, AnswersAreExact) {
  Rng rng(1);
  const Graph g = gen::random_regular(128, 32, rng);
  auto queries = make_queries(128, 12, rng);
  std::vector<std::uint64_t> expected;
  for (const auto& q : queries) expected.push_back(reference_answer(q));
  const auto report = multi_aggregate(g, 32, std::move(queries));
  EXPECT_EQ(report.results, expected);
  EXPECT_GE(report.parts, 2u);
}

TEST(MultiAggregate, ThroughputBeatsSingleTreeForManyQueries) {
  Rng rng(2);
  const Graph g = gen::random_regular(256, 64, rng);
  auto queries = make_queries(256, 32, rng);
  const auto report = multi_aggregate(g, 64, std::move(queries));
  // λ' parts answer in parallel: with enough queries the batched cost beats
  // the one-at-a-time single-tree baseline.
  EXPECT_LT(report.rounds, report.baseline_rounds)
      << "parts=" << report.parts;
}

TEST(MultiAggregate, SingleQueryStillWorks) {
  Rng rng(3);
  const Graph g = gen::circulant(60, 5);
  auto queries = make_queries(60, 1, rng);
  const auto expected = reference_answer(queries[0]);
  const auto report = multi_aggregate(g, 10, std::move(queries));
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0], expected);
}

TEST(MultiAggregate, QueriesSpreadAcrossParts) {
  Rng rng(4);
  const Graph g = gen::random_regular(128, 48, rng);
  auto queries = make_queries(128, 9, rng);
  const auto report = multi_aggregate(g, 48, std::move(queries));
  // With q queries over p parts each part gets ceil-ish q/p; the max-part
  // cost must be well under all-queries-on-one-part.
  EXPECT_GT(report.parts, 1u);
  EXPECT_GT(report.rounds, 0u);
}

}  // namespace
}  // namespace fc::apps
