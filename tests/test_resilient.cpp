#include "apps/resilient.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace fc::apps {
namespace {

core::TreePacking packing_for(const Graph& g, std::uint32_t lambda,
                              std::uint32_t target) {
  core::DecompositionOptions opts;
  opts.C = 1.5;
  return core::build_low_congestion_packing(g, lambda, target, opts);
}

TEST(Resilient, NoAdversaryAlwaysDecodes) {
  Rng rng(1);
  const Graph g = gen::random_regular(96, 24, rng);
  const auto packing = packing_for(g, 24, 5);
  ResilientOptions opts;
  opts.adversary = AdversaryKind::kNone;
  const auto report = resilient_broadcast(g, packing, 32, opts);
  EXPECT_TRUE(report.all_decoded());
  EXPECT_EQ(report.corrupted_copies, 0u);
  EXPECT_EQ(report.trees, packing.tree_count());
}

TEST(Resilient, TreeFocusedAdversaryIsDefeatedByReplication) {
  // The adversary owns one whole tree; with >= 3 trees the majority is
  // untouched, so every slot decodes.
  Rng rng(2);
  const Graph g = gen::random_regular(96, 32, rng);
  const auto packing = packing_for(g, 32, 5);
  ASSERT_GE(packing.tree_count(), 3u);
  ResilientOptions opts;
  opts.adversary = AdversaryKind::kTreeFocused;
  opts.f = 8;
  const auto report = resilient_broadcast(g, packing, 16, opts);
  EXPECT_GT(report.corrupted_copies, 0u);  // the attack does land...
  EXPECT_TRUE(report.all_decoded());       // ...but majority absorbs it
}

TEST(Resilient, SingleTreeIsFragile) {
  // The FP23 motivation: without replication, one corrupted edge per round
  // breaks delivery.
  Rng rng(3);
  const Graph g = gen::random_regular(64, 16, rng);
  core::DecompositionOptions dopts;
  auto packing = core::build_edge_disjoint_packing(g, 4, dopts);  // 1 part
  ASSERT_EQ(packing.tree_count(), 1u);
  ResilientOptions opts;
  opts.adversary = AdversaryKind::kTreeFocused;
  opts.f = 4;
  const auto report = resilient_broadcast(g, packing, 16, opts);
  EXPECT_GT(report.decode_failures, 0u);
}

TEST(Resilient, FailureRateGrowsWithF) {
  Rng rng(4);
  const Graph g = gen::random_regular(96, 24, rng);
  const auto packing = packing_for(g, 24, 5);
  double prev = -1;
  for (std::uint32_t f : {0u, 16u, 96u}) {
    ResilientOptions opts;
    opts.adversary = AdversaryKind::kRandom;
    opts.f = f;
    opts.seed = 9;
    const auto report = resilient_broadcast(g, packing, 16, opts);
    EXPECT_GE(report.failure_rate, prev);
    prev = report.failure_rate;
  }
}

TEST(Resilient, CutFocusedAdversaryOnSmallCut) {
  // On a dumbbell the adversary parks on the bridge cut; with f >= bridges
  // it owns the cut every round and no copy reaches the far side intact.
  const Graph g = gen::dumbbell(16, 2);
  core::DecompositionOptions dopts;
  auto packing = core::build_low_congestion_packing(g, 2, 3, dopts);
  ResilientOptions opts;
  opts.adversary = AdversaryKind::kCutFocused;
  opts.f = 2;
  opts.attacked_cut.assign(g.node_count(), false);
  for (NodeId v = 0; v < 16; ++v) opts.attacked_cut[v] = true;
  const auto report = resilient_broadcast(g, packing, 8, opts);
  // Every root->far-side path crosses the owned cut: decode fails somewhere.
  EXPECT_GT(report.decode_failures, 0u);
}

TEST(Resilient, RoundsAccountSerializedWindows) {
  Rng rng(5);
  const Graph g = gen::random_regular(64, 16, rng);
  const auto packing = packing_for(g, 16, 3);
  const auto report = resilient_broadcast(g, packing, 10, {});
  std::uint32_t max_depth = 0;
  for (const auto& t : packing.trees) max_depth = std::max(max_depth, t.depth);
  EXPECT_EQ(report.rounds, (max_depth + 10 + 1ull) * packing.tree_count());
}

TEST(Resilient, RejectsEmptyPacking) {
  const Graph g = gen::cycle(5);
  core::TreePacking empty;
  EXPECT_THROW(resilient_broadcast(g, empty, 1, {}), std::invalid_argument);
}

}  // namespace
}  // namespace fc::apps
