#include "algo/id_assignment.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace fc::algo {
namespace {

void check_ids_valid(const Graph& g, const IdAssignment& alg,
                     const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(alg.total(), total);
  // Intervals [first, first + count) must tile [0, total) without overlap.
  std::set<std::uint64_t> used;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::uint64_t i = 0; i < counts[v]; ++i) {
      const std::uint64_t id = alg.first_id(v) + i;
      EXPECT_LT(id, total);
      EXPECT_TRUE(used.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(used.size(), total);
}

TEST(IdAssignment, UniformCounts) {
  const Graph g = gen::grid(4, 4);
  const auto tree = run_bfs(g, 0).tree;
  std::vector<std::uint64_t> counts(16, 3);
  congest::Network net(g);
  IdAssignment alg(g, tree, counts);
  const auto res = net.run(alg);
  EXPECT_TRUE(res.finished);
  check_ids_valid(g, alg, counts);
}

TEST(IdAssignment, RandomCounts) {
  Rng rng(8);
  const Graph g = gen::random_regular(40, 4, rng);
  const auto tree = run_bfs(g, 7).tree;
  std::vector<std::uint64_t> counts(40);
  for (auto& c : counts) c = rng.below(5);  // zeros allowed
  congest::Network net(g);
  IdAssignment alg(g, tree, counts);
  net.run(alg);
  check_ids_valid(g, alg, counts);
}

TEST(IdAssignment, AllItemsAtOneNode) {
  const Graph g = gen::path(6);
  const auto tree = run_bfs(g, 0).tree;
  std::vector<std::uint64_t> counts(6, 0);
  counts[5] = 9;
  congest::Network net(g);
  IdAssignment alg(g, tree, counts);
  net.run(alg);
  EXPECT_EQ(alg.first_id(5), 0u);
  EXPECT_EQ(alg.total(), 9u);
}

TEST(IdAssignment, ZeroItemsEverywhere) {
  const Graph g = gen::cycle(5);
  const auto tree = run_bfs(g, 0).tree;
  congest::Network net(g);
  IdAssignment alg(g, tree, std::vector<std::uint64_t>(5, 0));
  const auto res = net.run(alg);
  EXPECT_TRUE(res.finished);
  EXPECT_EQ(alg.total(), 0u);
}

TEST(IdAssignment, RoundsLinearInDepth) {
  const Graph g = gen::path(30);
  const auto tree = run_bfs(g, 0).tree;
  congest::Network net(g);
  IdAssignment alg(g, tree, std::vector<std::uint64_t>(30, 1));
  const auto res = net.run(alg);
  EXPECT_LE(res.rounds, 2ull * tree.depth + 4);
}

TEST(IdAssignment, RootOwnsPrefix) {
  // The root takes ids [0, x_root) per Lemma 3's construction.
  const Graph g = gen::cycle(7);
  const auto tree = run_bfs(g, 2).tree;
  std::vector<std::uint64_t> counts(7, 2);
  congest::Network net(g);
  IdAssignment alg(g, tree, counts);
  net.run(alg);
  EXPECT_EQ(alg.first_id(2), 0u);
}

TEST(IdAssignment, RejectsBadInputs) {
  const Graph g = gen::path(4);
  const auto tree = run_bfs(g, 0).tree;
  EXPECT_THROW(IdAssignment(g, tree, std::vector<std::uint64_t>(3, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace fc::algo
