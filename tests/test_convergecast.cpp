#include "algo/convergecast.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "algo/learn_parameters.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace fc::algo {
namespace {

SpanningTree tree_of(const Graph& g, NodeId root) {
  return run_bfs(g, root).tree;
}

TEST(Convergecast, SumOverPath) {
  const Graph g = gen::path(10);
  const auto t = tree_of(g, 0);
  std::vector<std::uint64_t> vals(10);
  std::iota(vals.begin(), vals.end(), 1);  // 1..10
  congest::Network net(g);
  Convergecast alg(g, t, AggregateOp::kSum, vals);
  const auto res = net.run(alg);
  EXPECT_TRUE(res.finished);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_TRUE(alg.has_result(v));
    EXPECT_EQ(alg.result(v), 55u);
  }
}

TEST(Convergecast, MinAndMax) {
  Rng rng(4);
  const Graph g = gen::random_regular(50, 4, rng);
  const auto t = tree_of(g, 3);
  std::vector<std::uint64_t> vals(50);
  for (auto& v : vals) v = rng.below(1000) + 1;
  const std::uint64_t lo = *std::min_element(vals.begin(), vals.end());
  const std::uint64_t hi = *std::max_element(vals.begin(), vals.end());

  {
    congest::Network net(g);
    Convergecast alg(g, t, AggregateOp::kMin, vals);
    net.run(alg);
    EXPECT_EQ(alg.result(0), lo);
  }
  {
    congest::Network net(g);
    Convergecast alg(g, t, AggregateOp::kMax, vals);
    net.run(alg);
    EXPECT_EQ(alg.result(49), hi);
  }
}

TEST(Convergecast, RoundsAtMostTwiceDepthPlusSlack) {
  const Graph g = gen::grid(8, 8);
  const auto t = tree_of(g, 0);
  congest::Network net(g);
  Convergecast alg(g, t, AggregateOp::kSum,
                   std::vector<std::uint64_t>(64, 1));
  const auto res = net.run(alg);
  EXPECT_LE(res.rounds, 2ull * t.depth + 4);
}

TEST(Convergecast, SingleNodeTree) {
  const Graph g = Graph::from_edges(1, std::vector<std::pair<NodeId, NodeId>>{});
  const auto t = tree_of(g, 0);
  congest::Network net(g);
  Convergecast alg(g, t, AggregateOp::kSum, {42});
  const auto res = net.run(alg);
  EXPECT_TRUE(res.finished);
  EXPECT_EQ(alg.result(0), 42u);
}

TEST(Convergecast, RejectsNonSpanningTree) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  SpanningTree t = tree_of(g, 0);
  t.covered = 3;  // simulate a tree that missed a node
  EXPECT_THROW(Convergecast(g, t, AggregateOp::kSum,
                            std::vector<std::uint64_t>(4, 0)),
               std::invalid_argument);
}

TEST(Convergecast, RejectsWrongValueCount) {
  const Graph g = gen::path(4);
  const auto t = tree_of(g, 0);
  EXPECT_THROW(
      Convergecast(g, t, AggregateOp::kSum, std::vector<std::uint64_t>(3, 0)),
      std::invalid_argument);
}

TEST(AggregateOverTree, WrapperReturnsRootValue) {
  const Graph g = gen::cycle(12);
  const auto t = tree_of(g, 5);
  std::vector<std::uint64_t> vals(12, 2);
  const auto out = aggregate_over_tree(g, t, AggregateOp::kSum, vals);
  EXPECT_EQ(out.value, 24u);
  EXPECT_GT(out.rounds, 0u);
}

TEST(LearnParameters, MatchesDirectComputation) {
  Rng rng(6);
  const Graph g = gen::random_regular(60, 6, rng);
  const auto learned = learn_parameters(g, 0);
  EXPECT_EQ(learned.min_degree, 6u);
  EXPECT_EQ(learned.node_count, 60u);
  EXPECT_GT(learned.rounds, 0u);
}

TEST(LearnParameters, IrregularGraph) {
  const Graph g = gen::dumbbell(6, 2);
  const auto learned = learn_parameters(g, 3);
  EXPECT_EQ(learned.min_degree, 5u);  // clique node of degree 5
  EXPECT_EQ(learned.node_count, 12u);
}

}  // namespace
}  // namespace fc::algo
