#include "algo/convergecast.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "algo/learn_parameters.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace fc::algo {
namespace {

SpanningTree tree_of(const Graph& g, NodeId root) {
  return run_bfs(g, root).tree;
}

TEST(Convergecast, SumOverPath) {
  const Graph g = gen::path(10);
  const auto t = tree_of(g, 0);
  std::vector<std::uint64_t> vals(10);
  std::iota(vals.begin(), vals.end(), 1);  // 1..10
  congest::Network net(g);
  Convergecast alg(g, t, AggregateOp::kSum, vals);
  const auto res = net.run(alg);
  EXPECT_TRUE(res.finished);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_TRUE(alg.has_result(v));
    EXPECT_EQ(alg.result(v), 55u);
  }
}

TEST(Convergecast, MinAndMax) {
  Rng rng(4);
  const Graph g = gen::random_regular(50, 4, rng);
  const auto t = tree_of(g, 3);
  std::vector<std::uint64_t> vals(50);
  for (auto& v : vals) v = rng.below(1000) + 1;
  const std::uint64_t lo = *std::min_element(vals.begin(), vals.end());
  const std::uint64_t hi = *std::max_element(vals.begin(), vals.end());

  {
    congest::Network net(g);
    Convergecast alg(g, t, AggregateOp::kMin, vals);
    net.run(alg);
    EXPECT_EQ(alg.result(0), lo);
  }
  {
    congest::Network net(g);
    Convergecast alg(g, t, AggregateOp::kMax, vals);
    net.run(alg);
    EXPECT_EQ(alg.result(49), hi);
  }
}

TEST(Convergecast, RoundsAtMostTwiceDepthPlusSlack) {
  const Graph g = gen::grid(8, 8);
  const auto t = tree_of(g, 0);
  congest::Network net(g);
  Convergecast alg(g, t, AggregateOp::kSum,
                   std::vector<std::uint64_t>(64, 1));
  const auto res = net.run(alg);
  EXPECT_LE(res.rounds, 2ull * t.depth + 4);
}

TEST(Convergecast, SingleNodeTree) {
  const Graph g = Graph::from_edges(1, std::vector<std::pair<NodeId, NodeId>>{});
  const auto t = tree_of(g, 0);
  congest::Network net(g);
  Convergecast alg(g, t, AggregateOp::kSum, {42});
  const auto res = net.run(alg);
  EXPECT_TRUE(res.finished);
  EXPECT_EQ(alg.result(0), 42u);
}

TEST(Convergecast, RejectsNonSpanningTree) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  SpanningTree t = tree_of(g, 0);
  t.covered = 3;  // simulate a tree that missed a node
  EXPECT_THROW(Convergecast(g, t, AggregateOp::kSum,
                            std::vector<std::uint64_t>(4, 0)),
               std::invalid_argument);
}

TEST(Convergecast, RejectsWrongValueCount) {
  const Graph g = gen::path(4);
  const auto t = tree_of(g, 0);
  EXPECT_THROW(
      Convergecast(g, t, AggregateOp::kSum, std::vector<std::uint64_t>(3, 0)),
      std::invalid_argument);
}

TEST(AggregateOverTree, WrapperReturnsRootValue) {
  const Graph g = gen::cycle(12);
  const auto t = tree_of(g, 5);
  std::vector<std::uint64_t> vals(12, 2);
  const auto out = aggregate_over_tree(g, t, AggregateOp::kSum, vals);
  EXPECT_EQ(out.value, 24u);
  EXPECT_GT(out.rounds, 0u);
}

/// Mark both arcs of every listed edge as forest arcs.
std::vector<std::uint8_t> tree_flags(const Graph& g,
                                     const std::vector<EdgeId>& edges) {
  std::vector<std::uint8_t> flags(g.arc_count(), 0);
  for (const EdgeId e : edges) {
    const auto [a, b] = g.edge_arcs(e);
    flags[a] = flags[b] = 1;
  }
  return flags;
}

congest::RunResult run_echo(const Graph& g, ForestEcho& alg) {
  congest::Network net(g);
  return net.run(alg);
}

TEST(ForestEcho, EveryNodeLearnsTheMinOverASpanningTree) {
  Rng rng(9);
  const Graph g = gen::random_regular(60, 4, rng);
  const auto t = tree_of(g, 0);
  std::vector<EchoValue> vals(60);
  for (NodeId v = 0; v < 60; ++v) vals[v] = {rng.below(1000) + 1, v};
  const EchoValue lo = *std::min_element(vals.begin(), vals.end());
  const auto flags = tree_flags(g, t.tree_edges(g));
  ForestEcho alg(g, flags, vals);
  const auto res = run_echo(g, alg);
  EXPECT_TRUE(res.finished);
  for (NodeId v = 0; v < 60; ++v) {
    EXPECT_TRUE(alg.decided(v));
    EXPECT_EQ(alg.result(v), lo);
  }
  // The defining economy: at most two messages per tree edge.
  EXPECT_LE(res.messages, 2ull * t.tree_edges(g).size());
}

TEST(ForestEcho, PerComponentMinimaOnAForest) {
  // Two path components 0-1-2 and 3-4; node 5 isolated in the forest.
  const Graph g =
      Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  std::vector<EchoValue> vals = {{7, 0}, {3, 1}, {9, 2},
                                 {4, 3}, {6, 4}, {1, 5}};
  const auto flags = tree_flags(g, {0, 1, 2});
  ForestEcho alg(g, flags, vals);
  EXPECT_TRUE(run_echo(g, alg).finished);
  const EchoValue a{3, 1}, b{4, 3};
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(alg.result(v), a);
  EXPECT_EQ(alg.result(3), b);
  EXPECT_EQ(alg.result(4), b);
  // Node 5's edge {4,5} is not a forest arc: it keeps its own value.
  EXPECT_EQ(alg.result(5), (EchoValue{1, 5}));
}

TEST(ForestEcho, InactiveComponentsStaySilent) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  std::vector<EchoValue> vals = {{5, 0}, {2, 1}, {8, 2}, {4, 3}};
  const std::vector<std::uint8_t> inactive = {0, 0, 1, 1};
  const auto flags = tree_flags(g, {0, 1});
  ForestEcho alg(g, flags, vals, &inactive);
  const auto res = run_echo(g, alg);
  EXPECT_TRUE(res.finished);
  EXPECT_EQ(alg.result(0), (EchoValue{2, 1}));
  EXPECT_EQ(alg.result(1), (EchoValue{2, 1}));
  // Inactive nodes decide on their OWN value without exchanging anything.
  EXPECT_EQ(alg.result(2), (EchoValue{8, 2}));
  EXPECT_EQ(alg.result(3), (EchoValue{4, 3}));
  EXPECT_LE(res.messages, 2u);  // only the active pair talked
}

TEST(ForestEcho, RoundsTrackComponentDiameterWithoutAQuiescenceTail) {
  const Graph g = gen::path(64);
  std::vector<EdgeId> all_edges(g.edge_count());
  std::iota(all_edges.begin(), all_edges.end(), 0);
  std::vector<EchoValue> vals(64);
  for (NodeId v = 0; v < 64; ++v) vals[v] = {100 + v, v};
  const auto flags = tree_flags(g, all_edges);
  ForestEcho alg(g, flags, vals);
  const auto res = run_echo(g, alg);
  EXPECT_TRUE(res.finished);
  // Saturation meets in the middle (~n/2), resolution returns (~n/2):
  // about one diameter total, and no idle tail beyond the final round.
  EXPECT_LE(res.rounds, 64u + 3);
  EXPECT_EQ(alg.result(63), (EchoValue{100, 0}));
}

TEST(ForestEcho, RejectsMismatchedInputs) {
  const Graph g = gen::path(4);
  EXPECT_THROW(ForestEcho(g, std::vector<std::uint8_t>(g.arc_count(), 0),
                          std::vector<EchoValue>(3)),
               std::invalid_argument);
  EXPECT_THROW(ForestEcho(g, std::vector<std::uint8_t>(2, 0),
                          std::vector<EchoValue>(4)),
               std::invalid_argument);
  const std::vector<std::uint8_t> short_mask(2, 0);
  EXPECT_THROW(ForestEcho(g, std::vector<std::uint8_t>(g.arc_count(), 0),
                          std::vector<EchoValue>(4), &short_mask),
               std::invalid_argument);
}

TEST(LearnParameters, MatchesDirectComputation) {
  Rng rng(6);
  const Graph g = gen::random_regular(60, 6, rng);
  const auto learned = learn_parameters(g, 0);
  EXPECT_EQ(learned.min_degree, 6u);
  EXPECT_EQ(learned.node_count, 60u);
  EXPECT_GT(learned.rounds, 0u);
}

TEST(LearnParameters, IrregularGraph) {
  const Graph g = gen::dumbbell(6, 2);
  const auto learned = learn_parameters(g, 3);
  EXPECT_EQ(learned.min_degree, 5u);  // clique node of degree 5
  EXPECT_EQ(learned.node_count, 12u);
}

}  // namespace
}  // namespace fc::algo
