#include "scenario/graph_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"

namespace fc::scenario {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

/// Full identity: node count, edge list (ids + order), and per-node arc
/// order — everything the CSR layout is made of.
void expect_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.edge_list(), b.edge_list());
  for (NodeId v = 0; v < a.node_count(); ++v) {
    ASSERT_EQ(a.arc_begin(v), b.arc_begin(v));
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "arc order differs at node " << v;
  }
  EXPECT_EQ(graph_checksum(a), graph_checksum(b));
}

Graph sample_graph() { return build_graph("rmat:n=256,deg=8,seed=3"); }

TEST(EdgeListIo, RoundTrip) {
  const Graph g = sample_graph();
  const auto path = temp_path("roundtrip.txt");
  save_edge_list(g, path);
  expect_identical(g, load_edge_list(path));
}

TEST(EdgeListIo, CommentsAndErrors) {
  const auto path = temp_path("edgelist.txt");
  {
    std::ofstream out(path);
    out << "# a comment\n3 2\n0 1\n% another\n1 2\n";
  }
  const Graph g = load_edge_list(path);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);

  {
    std::ofstream out(path);
    out << "3 5\n0 1\n";  // header promises more edges than present
  }
  EXPECT_THROW(load_edge_list(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "3 1\n0 7\n";  // endpoint out of range
  }
  EXPECT_THROW(load_edge_list(path), std::runtime_error);
  EXPECT_THROW(load_edge_list(temp_path("no_such_file.txt")),
               std::runtime_error);
}

TEST(BinaryIo, RoundTripIdentity) {
  const Graph g = sample_graph();
  const auto path = temp_path("roundtrip.fcg");
  save_binary(g, path);
  expect_identical(g, load_binary(path));
}

TEST(BinaryIo, ChecksumCatchesCorruption) {
  const Graph g = sample_graph();
  const auto path = temp_path("corrupt.fcg");
  save_binary(g, path);
  // Flip one payload byte.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(20);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  try {
    load_binary(path);
    FAIL() << "expected checksum failure";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("checksum"), std::string::npos);
  }
}

TEST(BinaryIo, RejectsTruncation) {
  const Graph g = sample_graph();
  const auto path = temp_path("trunc.fcg");
  save_binary(g, path);
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(load_binary(path), std::runtime_error);
}

TEST(BinaryIo, RejectsBadMagicAndVersion) {
  const Graph g = gen::cycle(8);
  const auto path = temp_path("magic.fcg");
  save_binary(g, path);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const std::uint32_t not_magic = 0xdeadbeef;
    f.write(reinterpret_cast<const char*>(&not_magic), 4);
  }
  EXPECT_THROW(load_binary(path), std::runtime_error);

  save_binary(g, path);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    const std::uint32_t future_version = 99;
    f.write(reinterpret_cast<const char*>(&future_version), 4);
  }
  try {
    load_binary(path);
    FAIL() << "expected version failure";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("version"), std::string::npos);
  }
}

TEST(Corpus, LoadOrGenerateCachesAndReloads) {
  const auto dir = temp_path("corpus_cache");
  fs::remove_all(dir);
  const auto spec = GraphSpec::parse("dumbbell:s=16,bridges=2");

  bool from_cache = true;
  const Graph generated = load_or_generate(spec, dir, &from_cache);
  EXPECT_FALSE(from_cache);
  EXPECT_TRUE(fs::exists(fs::path(dir) / cache_file_name(spec)));

  const Graph reloaded = load_or_generate(spec, dir, &from_cache);
  EXPECT_TRUE(from_cache);
  expect_identical(generated, reloaded);
}

TEST(Corpus, CorruptCacheRegenerates) {
  const auto dir = temp_path("corpus_corrupt");
  fs::remove_all(dir);
  const auto spec = GraphSpec::parse("cycle:n=12");
  const Graph first = load_or_generate(spec, dir, nullptr);
  const auto file = fs::path(dir) / cache_file_name(spec);
  fs::resize_file(file, 3);  // destroy the cache entry

  bool from_cache = true;
  const Graph second = load_or_generate(spec, dir, &from_cache);
  EXPECT_FALSE(from_cache);
  expect_identical(first, second);
  // And the rewritten cache is valid again.
  expect_identical(first, load_binary(file.string()));
}

TEST(Corpus, DistinctSpecsGetDistinctFiles) {
  EXPECT_NE(cache_file_name(GraphSpec::parse("rmat:n=256,deg=8,seed=1")),
            cache_file_name(GraphSpec::parse("rmat:n=256,deg=8,seed=2")));
  // Canonicalization: parameter order does not change the cache identity.
  EXPECT_EQ(cache_file_name(GraphSpec::parse("rmat:seed=1,n=256,deg=8")),
            cache_file_name(GraphSpec::parse("rmat:n=256,deg=8,seed=1")));
}

TEST(Corpus, CacheIdentityBakesDefaultsAndStripsWeights) {
  // A spec relying on defaults and one spelling them out share one file.
  EXPECT_EQ(cache_file_name(GraphSpec::parse("rmat:n=256")),
            cache_file_name(GraphSpec::parse(
                "rmat:a=0.57,b=0.19,c=0.19,deg=8,n=256,seed=1")));
  // Changing a defaulted value changes the identity.
  EXPECT_NE(cache_file_name(GraphSpec::parse("rmat:n=256")),
            cache_file_name(GraphSpec::parse("rmat:n=256,a=0.6")));
  // Weighted specs share the topology file with their unweighted sibling.
  EXPECT_EQ(cache_file_name(GraphSpec::parse("rmat:n=256,weights=1..9")),
            cache_file_name(GraphSpec::parse("rmat:n=256")));
}

TEST(Manifest, RecordsCanonicalSpecFileAndChecksum) {
  const auto dir = temp_path("corpus_manifest");
  fs::remove_all(dir);
  const auto spec = GraphSpec::parse("rmat:n=256,deg=8,seed=3");
  const Graph g = load_or_generate(spec, dir, nullptr);

  const auto entries = read_manifest(dir);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].spec,
            "rmat:a=0.57,b=0.19,c=0.19,deg=8,n=256,seed=3");
  EXPECT_EQ(entries[0].file, cache_file_name(spec));
  EXPECT_EQ(entries[0].checksum, graph_checksum(g));

  // A second spec appends; regenerating the first upserts, not duplicates.
  load_or_generate(GraphSpec::parse("cycle:n=12"), dir, nullptr);
  load_or_generate(spec, dir, nullptr);
  EXPECT_EQ(read_manifest(dir).size(), 2u);
}

TEST(Manifest, ChecksumMismatchForcesRegeneration) {
  const auto dir = temp_path("corpus_stale");
  fs::remove_all(dir);
  const auto spec = GraphSpec::parse("dumbbell:s=16,bridges=2");
  const Graph first = load_or_generate(spec, dir, nullptr);

  // Simulate a stale ledger: the manifest claims a different graph for this
  // spec (as if the family's generator changed without a version bump).
  auto entries = read_manifest(dir);
  ASSERT_EQ(entries.size(), 1u);
  upsert_manifest(dir, {entries[0].spec, entries[0].file,
                        entries[0].checksum ^ 0xdeadbeefULL});

  bool from_cache = true;
  const Graph second = load_or_generate(spec, dir, &from_cache);
  EXPECT_FALSE(from_cache);  // mismatch detected -> regenerated
  expect_identical(first, second);
  // And the ledger is repaired.
  const auto repaired = read_manifest(dir);
  ASSERT_EQ(repaired.size(), 1u);
  EXPECT_EQ(repaired[0].checksum, graph_checksum(second));
}

TEST(Manifest, MalformedLinesAreSkipped) {
  const auto dir = temp_path("corpus_malformed");
  fs::remove_all(dir);
  load_or_generate(GraphSpec::parse("cycle:n=10"), dir, nullptr);
  {
    std::ofstream out(fs::path(dir) / "manifest.txt", std::ios::app);
    out << "not a manifest line\n\tweird\t\n";
  }
  const auto entries = read_manifest(dir);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].spec, "cycle:n=10");
}

TEST(Corpus, CacheIdentityStripsSources) {
  // sources= never affects the topology, so batch specs share the file (and
  // manifest entry) with their plain sibling.
  EXPECT_EQ(cache_file_name(GraphSpec::parse("rmat:n=256,sources=8")),
            cache_file_name(GraphSpec::parse("rmat:n=256")));
  EXPECT_EQ(
      cache_file_name(GraphSpec::parse("rmat:n=256,sources=8,weights=1..9")),
      cache_file_name(GraphSpec::parse("rmat:n=256")));
}

TEST(CorpusGc, MissingDirectoryIsANoOp) {
  const auto gc = gc_corpus(temp_path("gc_no_such_dir"));
  EXPECT_EQ(gc.kept, 0u);
  EXPECT_EQ(gc.evicted_files, 0u);
  EXPECT_EQ(gc.dropped_entries, 0u);
}

TEST(CorpusGc, KeepsVerifiedEntriesUntouched) {
  const auto dir = temp_path("gc_clean");
  fs::remove_all(dir);
  const auto spec_a = GraphSpec::parse("cycle:n=12");
  const auto spec_b = GraphSpec::parse("dumbbell:s=16,bridges=2");
  const Graph a = load_or_generate(spec_a, dir, nullptr);
  load_or_generate(spec_b, dir, nullptr);

  const auto gc = gc_corpus(dir);
  EXPECT_EQ(gc.kept, 2u);
  EXPECT_EQ(gc.evicted_files, 0u);
  EXPECT_EQ(gc.dropped_entries, 0u);
  EXPECT_EQ(read_manifest(dir).size(), 2u);
  // The survivors still load from cache.
  bool from_cache = false;
  expect_identical(a, load_or_generate(spec_a, dir, &from_cache));
  EXPECT_TRUE(from_cache);
}

TEST(CorpusGc, EvictsOrphanAndCorruptFilesButNotForeignOnes) {
  const auto dir = temp_path("gc_evict");
  fs::remove_all(dir);
  const auto spec = GraphSpec::parse("cycle:n=12");
  load_or_generate(spec, dir, nullptr);

  // An orphan cache file (no manifest entry) and a corrupt vouched one.
  { std::ofstream out(fs::path(dir) / "orphan.fcg"); out << "junk"; }
  const auto vouched = fs::path(dir) / cache_file_name(spec);
  fs::resize_file(vouched, 3);
  // A non-.fcg bystander must survive any sweep.
  { std::ofstream out(fs::path(dir) / "notes.txt"); out << "keep me"; }

  const auto gc = gc_corpus(dir);
  EXPECT_EQ(gc.kept, 0u);
  EXPECT_EQ(gc.evicted_files, 2u);
  EXPECT_EQ(gc.dropped_entries, 1u);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "orphan.fcg"));
  EXPECT_FALSE(fs::exists(vouched));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "notes.txt"));
  EXPECT_TRUE(read_manifest(dir).empty());
}

TEST(CorpusGc, EvictsFilesFailingTheManifestChecksum) {
  const auto dir = temp_path("gc_mismatch");
  fs::remove_all(dir);
  const auto spec = GraphSpec::parse("cycle:n=12");
  load_or_generate(spec, dir, nullptr);
  // Swap in a VALID binary of a different graph: the file alone looks fine,
  // only the manifest cross-check can catch it.
  const auto file = fs::path(dir) / cache_file_name(spec);
  save_binary(gen::path(5), file.string());

  const auto gc = gc_corpus(dir);
  EXPECT_EQ(gc.kept, 0u);
  EXPECT_EQ(gc.evicted_files, 1u);
  EXPECT_EQ(gc.dropped_entries, 1u);
  EXPECT_FALSE(fs::exists(file));

  // The next load_or_generate rebuilds a clean corpus.
  bool from_cache = true;
  load_or_generate(spec, dir, &from_cache);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(gc_corpus(dir).kept, 1u);
}

TEST(CorpusGc, DropsDanglingManifestEntries) {
  const auto dir = temp_path("gc_dangling");
  fs::remove_all(dir);
  const auto spec = GraphSpec::parse("cycle:n=12");
  load_or_generate(spec, dir, nullptr);
  load_or_generate(GraphSpec::parse("path:n=9"), dir, nullptr);
  fs::remove(fs::path(dir) / cache_file_name(spec));  // file gone, entry stays

  const auto gc = gc_corpus(dir);
  EXPECT_EQ(gc.kept, 1u);
  EXPECT_EQ(gc.evicted_files, 0u);
  EXPECT_EQ(gc.dropped_entries, 1u);
  const auto entries = read_manifest(dir);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].spec, "path:n=9");
}

TEST(Corpus, WeightedLoadSharesTopologyAndRederivesWeights) {
  const auto dir = temp_path("corpus_weighted");
  fs::remove_all(dir);
  const auto weighted_spec =
      GraphSpec::parse("erdos_renyi:n=80,p=0.1,seed=2,weights=3..30");

  bool from_cache = true;
  const WeightedGraph generated =
      load_or_generate_weighted(weighted_spec, dir, &from_cache);
  EXPECT_FALSE(from_cache);
  for (EdgeId e = 0; e < generated.graph().edge_count(); ++e) {
    EXPECT_GE(generated.weight(e), 3);
    EXPECT_LE(generated.weight(e), 30);
  }

  // Reload: topology comes from cache, weights re-derive bit-identically.
  const WeightedGraph reloaded =
      load_or_generate_weighted(weighted_spec, dir, &from_cache);
  EXPECT_TRUE(from_cache);
  expect_identical(generated.graph(), reloaded.graph());
  for (EdgeId e = 0; e < generated.graph().edge_count(); ++e)
    ASSERT_EQ(generated.weight(e), reloaded.weight(e));

  // The unweighted sibling hits the same cached topology file.
  const auto unweighted_spec = weighted_spec.without("weights");
  const Graph topo = load_or_generate(unweighted_spec, dir, &from_cache);
  EXPECT_TRUE(from_cache);
  expect_identical(topo, generated.graph());
  EXPECT_EQ(read_manifest(dir).size(), 1u);
}

}  // namespace
}  // namespace fc::scenario
