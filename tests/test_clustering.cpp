#include "apps/clustering.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace fc::apps {
namespace {

TEST(Clustering, EveryNodeHasACenterNeighbourOrSelf) {
  Rng rng(1);
  const Graph g = gen::random_regular(200, 20, rng);
  const auto c = build_clustering(g, 20);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const NodeId s = c.s[v];
    EXPECT_TRUE(s == v || g.has_edge(v, s)) << "v=" << v;
    EXPECT_EQ(c.centers[c.cluster_of[v]], s);
  }
}

TEST(Clustering, ClusterRadiusOne) {
  Rng rng(2);
  const Graph g = gen::random_regular(150, 12, rng);
  const auto c = build_clustering(g, 12);
  // Every node is at distance <= 1 from its center, so cluster diameter <= 2.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (c.s[v] != v) {
      EXPECT_TRUE(g.has_edge(v, c.s[v]));
    }
  }
}

TEST(Clustering, ClusterCountNearNLogNOverDelta) {
  Rng rng(3);
  const Graph g = gen::random_regular(300, 30, rng);
  ClusteringOptions opts;
  opts.c = 3.0;
  const auto c = build_clustering(g, 30, opts);
  const double expected =
      opts.c * std::log(300.0) / 30.0 * 300.0;  // p * n
  EXPECT_GT(c.cluster_count(), expected * 0.5);
  EXPECT_LT(c.cluster_count(), expected * 2.0);
  EXPECT_EQ(c.self_promoted, 0u);  // w.h.p. regime
}

TEST(Clustering, CentersAreTheirOwnCenters) {
  Rng rng(4);
  const Graph g = gen::circulant(100, 8);
  const auto c = build_clustering(g, 16);
  for (std::uint32_t i = 0; i < c.cluster_count(); ++i) {
    const NodeId ctr = c.centers[i];
    EXPECT_EQ(c.s[ctr], ctr);
    EXPECT_EQ(c.cluster_of[ctr], i);
  }
}

TEST(Clustering, ClusterGraphEdgesReflectGraphEdges) {
  Rng rng(5);
  const Graph g = gen::random_regular(120, 10, rng);
  const auto c = build_clustering(g, 10);
  // Every Gc edge must come from some G edge between the two clusters.
  const Graph& gc = c.cluster_graph;
  for (EdgeId e = 0; e < gc.edge_count(); ++e) {
    bool found = false;
    for (EdgeId ge = 0; ge < g.edge_count() && !found; ++ge) {
      const std::uint32_t a = c.cluster_of[g.edge_u(ge)];
      const std::uint32_t b = c.cluster_of[g.edge_v(ge)];
      found = (std::min(a, b) == gc.edge_u(e) && std::max(a, b) == gc.edge_v(e));
    }
    EXPECT_TRUE(found) << "Gc edge " << e << " has no witness";
  }
  // And conversely every inter-cluster G edge appears in Gc.
  for (EdgeId ge = 0; ge < g.edge_count(); ++ge) {
    const std::uint32_t a = c.cluster_of[g.edge_u(ge)];
    const std::uint32_t b = c.cluster_of[g.edge_v(ge)];
    if (a != b) {
      EXPECT_TRUE(gc.has_edge(a, b));
    }
  }
}

TEST(Clustering, ConnectedGraphGivesConnectedClusterGraph) {
  Rng rng(6);
  const Graph g = gen::random_regular(100, 8, rng);
  const auto c = build_clustering(g, 8);
  if (c.cluster_count() > 1) {
    EXPECT_TRUE(is_connected(c.cluster_graph));
  }
}

TEST(Clustering, SelfPromotionOnSparseSampling) {
  // With a tiny constant c the sampling leaves nodes uncovered; the
  // fallback must still produce a valid clustering.
  const Graph g = gen::cycle(50);
  ClusteringOptions opts;
  opts.c = 0.05;
  const auto c = build_clustering(g, 2, opts);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const NodeId s = c.s[v];
    EXPECT_TRUE(s == v || g.has_edge(v, s));
  }
}

TEST(Clustering, TwoRoundProtocol) {
  Rng rng(7);
  const Graph g = gen::circulant(60, 4);
  const auto c = build_clustering(g, 8);
  EXPECT_LE(c.rounds, 4u);
}

TEST(Clustering, DeterministicInSeed) {
  const Graph g = gen::circulant(80, 6);
  ClusteringOptions opts;
  opts.seed = 123;
  const auto c1 = build_clustering(g, 12, opts);
  const auto c2 = build_clustering(g, 12, opts);
  EXPECT_EQ(c1.s, c2.s);
  EXPECT_EQ(c1.centers, c2.centers);
}

TEST(Clustering, RejectsBadArguments) {
  const Graph g = gen::cycle(5);
  EXPECT_THROW(build_clustering(g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fc::apps
