#include "util/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace fc {
namespace {

Options make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Options(static_cast<int>(args.size()),
                 const_cast<char**>(args.data()));
}

TEST(Options, ParsesKeyValue) {
  auto o = make({"--n=100", "--name=abc"});
  EXPECT_EQ(o.get_int("n", 0), 100);
  EXPECT_EQ(o.get("name", ""), "abc");
}

TEST(Options, Flags) {
  auto o = make({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose"));
  EXPECT_FALSE(o.get_bool("quiet"));
}

TEST(Options, Fallbacks) {
  auto o = make({});
  EXPECT_EQ(o.get_int("missing", 7), 7);
  EXPECT_EQ(o.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(o.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(o.get_bool("missing", true));
}

TEST(Options, DoubleParsing) {
  auto o = make({"--eps=0.125"});
  EXPECT_DOUBLE_EQ(o.get_double("eps", 0), 0.125);
}

TEST(Options, Positional) {
  auto o = make({"first", "--k=1", "second"});
  ASSERT_EQ(o.positional_count(), 2u);
  EXPECT_EQ(o.positional(0), "first");
  EXPECT_EQ(o.positional(1), "second");
  EXPECT_THROW(o.positional(2), std::out_of_range);
}

TEST(Options, BoolSpellings) {
  auto o = make({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(o.get_bool("a"));
  EXPECT_TRUE(o.get_bool("b"));
  EXPECT_TRUE(o.get_bool("c"));
  EXPECT_FALSE(o.get_bool("d"));
}

TEST(Options, HasDetectsPresence) {
  auto o = make({"--x=1"});
  EXPECT_TRUE(o.has("x"));
  EXPECT_FALSE(o.has("y"));
}

}  // namespace
}  // namespace fc
