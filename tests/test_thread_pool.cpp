#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace fc {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadedPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(57, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 57);
  }
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  std::vector<std::uint8_t> seen(1000, 0);
  std::atomic<int> chunks{0};
  pool.parallel_chunks(1000, [&](std::size_t, std::size_t b, std::size_t e) {
    ++chunks;
    for (std::size_t i = b; i < e; ++i) {
      EXPECT_EQ(seen[i], 0);  // disjointness
      seen[i] = 1;
    }
  });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 1000);
  EXPECT_LE(chunks.load(), 4);
}

TEST(ThreadPool, ChunkBoundariesAreDeterministic) {
  // Static chunking: worker w always gets the same [begin, end) for fixed n.
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> first(4, {0, 0}), second(4, {0, 0});
  pool.parallel_chunks(103, [&](std::size_t w, std::size_t b, std::size_t e) {
    first[w] = {b, e};
  });
  pool.parallel_chunks(103, [&](std::size_t w, std::size_t b, std::size_t e) {
    second[w] = {b, e};
  });
  EXPECT_EQ(first, second);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NMuchLargerThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(100'000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 100'000ull * 99'999 / 2);
}

}  // namespace
}  // namespace fc
