// Cross-cutting edge-case and robustness tests: simulator semantics under
// unusual inputs, determinism guarantees, and boundary parameter values
// that the per-module suites don't reach.

#include <gtest/gtest.h>

#include "algo/pipeline_broadcast.hpp"
#include "apps/weighted_apsp.hpp"
#include "congest/network.hpp"
#include "congest/scheduler.hpp"
#include "core/fast_broadcast.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/properties.hpp"
#include "lb/hard_families.hpp"
#include "util/rng.hpp"

namespace fc {
namespace {

/// Echo algorithm: forwards the exact message it receives back and records
/// everything seen; used to verify content integrity through the engine.
class Echo : public congest::Algorithm {
 public:
  explicit Echo(int max_hops) : max_hops_(max_hops) {}
  void start(congest::Context& ctx) override {
    if (ctx.id() == 0)
      ctx.send(ctx.arc_begin(), {0xABCD, 0x1122334455667788ULL, 99});
  }
  void step(congest::Context& ctx) override {
    for (const auto& in : ctx.inbox()) {
      seen_.push_back(in.msg);
      if (++hops_ < max_hops_) ctx.send(in.via, in.msg);
    }
  }
  bool done() const override { return hops_ >= max_hops_; }
  std::vector<congest::Message> seen_;
  int hops_ = 0;
  int max_hops_;
};

TEST(EdgeCases, MessageContentSurvivesTransit) {
  const Graph g = gen::path(2);
  congest::Network net(g);
  Echo alg(6);
  net.run(alg);
  ASSERT_EQ(alg.seen_.size(), 6u);
  for (const auto& m : alg.seen_) {
    EXPECT_EQ(m.tag, 0xABCDu);
    EXPECT_EQ(m.a, 0x1122334455667788ULL);
    EXPECT_EQ(m.b, 99u);
  }
}

TEST(EdgeCases, NodeWithNoEdgesIsHarmless) {
  // Node 2 is isolated: handlers run for it but it can neither send nor
  // receive; the rest of the graph proceeds normally.
  const Graph g = Graph::from_edges(3, {{0, 1}});
  congest::Network net(g);
  Echo alg(2);
  const auto res = net.run(alg);
  EXPECT_TRUE(res.finished);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(EdgeCases, CountSendsOffStillRuns) {
  const Graph g = gen::cycle(6);
  congest::Network net(g);
  Echo alg(4);
  congest::RunOptions opts;
  opts.count_sends = false;
  const auto res = net.run(alg, opts);
  EXPECT_TRUE(res.finished);
  EXPECT_TRUE(res.arc_sends.empty());  // metering disabled: no per-arc counts
  EXPECT_EQ(res.max_edge_congestion(g), 0u);
}

TEST(EdgeCases, FastBroadcastDeterministicInSeed) {
  Rng rng(5);
  const Graph g = gen::random_regular(96, 24, rng);
  std::vector<algo::PlacedMessage> msgs;
  for (std::uint64_t i = 0; i < 128; ++i)
    msgs.push_back({static_cast<NodeId>(i % 96), i, i * 7});
  core::FastBroadcastOptions opts;
  opts.seed = 42;
  const auto a = core::run_fast_broadcast(g, 24, msgs, opts);
  const auto b = core::run_fast_broadcast(g, 24, msgs, opts);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.max_edge_congestion, b.max_edge_congestion);
}

TEST(EdgeCases, FastBroadcastWithLambdaAboveDeltaEventuallyFails) {
  // Claiming λ far above the true connectivity makes parts non-spanning;
  // after max_retries the algorithm must report the failure loudly rather
  // than lose messages.
  const Graph g = gen::dumbbell(24, 1);  // λ = 1, δ = 23
  std::vector<algo::PlacedMessage> msgs{{0, 0, 1}};
  core::FastBroadcastOptions opts;
  opts.C = 0.4;          // force >= 2 parts even for modest λ̃
  opts.max_retries = 2;
  EXPECT_THROW(core::run_fast_broadcast(g, 23, msgs, opts),
               std::runtime_error);
}

TEST(EdgeCases, TwoNodeGraphBroadcast) {
  const Graph g = gen::path(2);
  std::vector<algo::PlacedMessage> msgs{{0, 0, 5}, {1, 1, 6}, {0, 2, 7}};
  const auto report = core::run_fast_broadcast(g, 1, msgs);
  EXPECT_TRUE(report.complete);
}

TEST(EdgeCases, StarGraphBroadcast) {
  // Star = complete bipartite K_{1,n}: λ = 1, hub bottleneck.
  const Graph g = gen::complete_bipartite(1, 12);
  std::vector<algo::PlacedMessage> msgs;
  for (std::uint64_t i = 0; i < 24; ++i)
    msgs.push_back({static_cast<NodeId>(1 + i % 12), i, i});
  const auto report = core::run_textbook_broadcast(g, msgs);
  EXPECT_TRUE(report.complete);
  // Hub edge carries everything: congestion ~ 2k.
  EXPECT_GE(report.max_edge_congestion, 24u);
}

TEST(EdgeCases, Theorem9EstimatesDecodeKValues) {
  // The heart of the Theorem 9 argument: ANY α-approximate distance
  // estimate at v1 pins down k_i exactly, because consecutive candidate
  // distances 1 + (2α)^k are more than an α factor apart. Verify with a
  // real α-approximation (the spanner pipeline).
  const NodeId n = 24;
  const std::uint32_t lambda = 4;
  const double alpha = 3.0;  // spanner stretch 2k-1 = 3 for k = 2
  const auto inst =
      lb::build_theorem9_instance(n, lambda, alpha, 100'000'000, 7);
  apps::WeightedApspOptions wopts;
  wopts.seed = 3;
  const auto report =
      apps::approximate_apsp_weighted(inst.graph, lambda, /*k=*/2, wopts);
  const auto est = report.distances_from(0);  // v1's estimates
  for (std::size_t i = 0; i < inst.k_values.size(); ++i) {
    // Decode: the unique k with d(k) <= est < alpha * d(k) ... candidates
    // are separated enough that scanning works.
    std::uint32_t decoded = 0;
    for (std::uint32_t kk = 1; kk <= inst.kmax; ++kk) {
      Weight pow = 1;
      for (std::uint32_t t = 0; t < kk; ++t)
        pow *= static_cast<Weight>(2 * alpha);
      const Weight d = 1 + pow;
      if (est[i + 2] >= d && est[i + 2] <= static_cast<Weight>(alpha) * d) {
        decoded = kk;
        break;
      }
    }
    EXPECT_EQ(decoded, inst.k_values[i]) << "clique node " << i;
  }
}

TEST(EdgeCases, PartitionWithMorePartsThanEdges) {
  // parts > m leaves some parts empty; they are disconnected subgraphs and
  // the decomposition must report that rather than crash.
  const Graph g = gen::path(4);  // 3 edges
  const auto part = random_edge_partition(g, 10, 3);
  EXPECT_EQ(part.parts.size(), 10u);
  std::size_t nonempty = 0;
  for (const auto& p : part.parts) nonempty += p.graph.edge_count() > 0;
  EXPECT_LE(nonempty, 3u);
}

TEST(EdgeCases, PipelineBroadcastManyMessagesFewNodes) {
  // k >> n: pure pipelining throughput.
  const Graph g = gen::path(4);
  const auto tree = algo::run_bfs(g, 0).tree;
  std::vector<algo::PlacedMessage> msgs;
  for (std::uint64_t i = 0; i < 1000; ++i)
    msgs.push_back({static_cast<NodeId>(i % 4), i, i});
  congest::Network net(g);
  algo::PipelineBroadcast alg(g, tree, msgs);
  const auto res = net.run(alg);
  EXPECT_TRUE(res.finished);
  // Rounds ~ 2k, dominated by bandwidth, not depth.
  EXPECT_LE(res.rounds, 2ull * 1000 + 20);
}

TEST(EdgeCases, SchedulerZeroPacketJob) {
  const Graph g = gen::path(3);
  const auto tree = algo::run_bfs(g, 0).tree;
  std::vector<congest::TreeJob> jobs{{&tree, 0, 0}};
  const auto res = congest::schedule_tree_broadcasts(g, jobs);
  EXPECT_EQ(res.makespan, 0u);
  EXPECT_EQ(res.total_packet_hops, 0u);
}

}  // namespace
}  // namespace fc
