#include "apps/congested_clique.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace fc::apps {
namespace {

TEST(CongestedClique, OneRoundSimulationCompletes) {
  Rng rng(1);
  const Graph g = gen::random_regular(128, 32, rng);
  std::vector<std::uint64_t> inputs(128);
  for (auto& x : inputs) x = rng();
  const auto report = simulate_bcc_round(g, 32, inputs);
  EXPECT_TRUE(report.broadcast_report.complete);
  EXPECT_EQ(report.broadcast_report.k, 128u);
}

TEST(CongestedClique, RoundsScaleWithInverseLambda) {
  // Õ(n/λ): doubling λ should not increase rounds (same n).
  Rng rng(2);
  const Graph lo = gen::random_regular(128, 16, rng);
  const Graph hi = gen::random_regular(128, 64, rng);
  std::vector<std::uint64_t> inputs(128, 7);
  core::FastBroadcastOptions opts;
  const auto rlo = simulate_bcc_round(lo, 16, inputs, opts);
  const auto rhi = simulate_bcc_round(hi, 64, inputs, opts);
  EXPECT_LT(rhi.rounds, rlo.rounds);
}

TEST(CongestedClique, RequiresOneInputPerNode) {
  const Graph g = gen::cycle(6);
  EXPECT_THROW(simulate_bcc_round(g, 2, std::vector<std::uint64_t>(5)),
               std::invalid_argument);
}

TEST(CongestedClique, InputsPreserved) {
  const Graph g = gen::circulant(40, 4);
  std::vector<std::uint64_t> inputs(40);
  for (NodeId v = 0; v < 40; ++v) inputs[v] = v * v;
  const auto report = simulate_bcc_round(g, 8, inputs);
  EXPECT_EQ(report.inputs, inputs);
}

}  // namespace
}  // namespace fc::apps
