#include "apps/sparsifier.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/mincut.hpp"
#include "util/rng.hpp"

namespace fc::apps {
namespace {

TEST(Sparsifier, FullSamplingWhenPIsOne) {
  // Small λ forces p = 1: the sparsifier is the graph itself, error 0.
  const Graph g = gen::cycle(12);
  const auto h = build_cut_sparsifier(g, 2, 0.5);
  EXPECT_EQ(h.p, 1.0);
  EXPECT_EQ(h.size(), g.edge_count());
  Rng rng(1);
  const auto cuts = random_cuts(12, 20, rng);
  EXPECT_DOUBLE_EQ(max_cut_error(g, h, cuts), 0.0);
}

TEST(Sparsifier, SampledSizeConcentrates) {
  Rng rng(2);
  const Graph g = gen::random_regular(256, 64, rng);
  SparsifierOptions opts;
  opts.c = 2.0;
  const auto h = build_cut_sparsifier(g, 64, 0.5, opts);
  ASSERT_LT(h.p, 1.0);
  const double expected = h.p * g.edge_count();
  EXPECT_GT(static_cast<double>(h.size()), 0.7 * expected);
  EXPECT_LT(static_cast<double>(h.size()), 1.3 * expected);
}

TEST(Sparsifier, EnumeratedCutsWithinEpsilonOnSmallGraph) {
  // Exhaustive verification on a graph small enough to enumerate all cuts.
  Rng rng(3);
  const Graph g = gen::circulant(16, 4);  // λ = 8
  const double eps = 0.6;
  const auto h = build_cut_sparsifier(g, 8, eps, {.c = 6.0, .seed = 4});
  double worst = 0;
  std::vector<bool> side(16);
  for (std::uint32_t mask = 1; mask < (1u << 15); ++mask) {
    for (NodeId v = 0; v < 16; ++v) side[v] = v > 0 && ((mask >> (v - 1)) & 1);
    const double truth = static_cast<double>(cut_size(g, side));
    const double est = sparsifier_cut(g, h, side);
    worst = std::max(worst, std::abs(est - truth) / truth);
  }
  EXPECT_LE(worst, eps) << "worst relative cut error " << worst;
}

TEST(Sparsifier, SampledCutsWithinEpsilonOnLargerGraph) {
  Rng rng(5);
  const Graph g = gen::random_regular(300, 60, rng);
  const double eps = 0.3;
  const auto h = build_cut_sparsifier(g, 60, eps, {.c = 6.0, .seed = 6});
  const auto cuts = random_cuts(300, 200, rng);
  EXPECT_LE(max_cut_error(g, h, cuts), eps);
}

TEST(Sparsifier, SmallerEpsilonKeepsMoreEdges) {
  Rng rng(7);
  const Graph g = gen::random_regular(200, 50, rng);
  const auto coarse = build_cut_sparsifier(g, 50, 0.8);
  const auto fine = build_cut_sparsifier(g, 50, 0.2);
  EXPECT_GE(fine.p, coarse.p);
  EXPECT_GE(fine.size(), coarse.size());
}

TEST(Sparsifier, EstimateIsUnbiasedOnAverage) {
  Rng rng(8);
  const Graph g = gen::random_regular(128, 32, rng);
  std::vector<bool> side(128, false);
  for (NodeId v = 0; v < 64; ++v) side[v] = true;
  const double truth = static_cast<double>(cut_size(g, side));
  double sum = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    SparsifierOptions sopts;
    sopts.c = 1.0;
    sopts.seed = 1000 + static_cast<std::uint64_t>(t);
    const auto h = build_cut_sparsifier(g, 32, 0.5, sopts);
    sum += sparsifier_cut(g, h, side);
  }
  EXPECT_NEAR(sum / trials, truth, 0.1 * truth);
}

TEST(Sparsifier, RejectsBadArguments) {
  const Graph g = gen::cycle(5);
  EXPECT_THROW(build_cut_sparsifier(g, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(build_cut_sparsifier(g, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(build_cut_sparsifier(g, 2, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace fc::apps
