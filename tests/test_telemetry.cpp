// Telemetry contract tests.
//
// The load-bearing property: recording NEVER changes or misreports the
// execution. Totals in the snapshot agree exactly with RunResult on the
// registry differential grid, across engine pool sizes and both engines,
// in both recording modes. On top of that: the kRounds series derivations
// (round = global sample index, delivered = previous round's sent, sweep
// run-length encoding, multi-run span boundaries, orphan truncation after
// a mid-run exception), annotation capture for MST phases and batch-SSSP
// generations, histogram summaries, and both exporters emitting valid
// JSON / NDJSON (validated with the in-tree util/json parser).

#include "congest/telemetry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algo/bfs.hpp"
#include "apps/batch_sssp.hpp"
#include "apps/mst.hpp"
#include "apps/sssp.hpp"
#include "congest/network.hpp"
#include "scenario/spec.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace fc::congest {
namespace {

/// The registry differential grid (same specs as test_network_sparse).
const char* const kSpecs[] = {
    "random_regular:n=96,d=6,seed=3,weights=1..100",
    "harary:n=64,k=5,weights=1..50",
    "watts_strogatz:n=96,k=6,p=0.2,seed=5,weights=1..40",
    "dumbbell:s=24,bridges=3,weights=1..9",
    "rmat:n=128,deg=6,seed=7,largest_cc=1,weights=1..100",
    "thick_cycle:groups=8,width=4",
};

const std::size_t kThreads[] = {1, 2, 8};

/// Every invariant a single-run recorder must satisfy against the engine's
/// own result, independent of mode, engine, and pool size.
void expect_exact(const Telemetry& tele, const RunResult& res,
                  const std::string& name) {
  ASSERT_TRUE(res.telemetry.has_value());
  const TelemetrySnapshot& snap = *res.telemetry;
  EXPECT_EQ(snap.mode, tele.mode());
  EXPECT_EQ(snap.rounds, res.rounds);
  EXPECT_EQ(snap.messages, res.messages);
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, name);
  EXPECT_EQ(snap.spans[0].first_round, 0u);
  EXPECT_EQ(snap.spans[0].rounds, res.rounds);
  EXPECT_EQ(snap.spans[0].messages, res.messages);
  EXPECT_EQ(snap.spans[0].finished, res.finished);

  // The series lives in the recorder in both modes (the kRounds per-run
  // snapshot deliberately omits it; kFull includes it).
  if (tele.full())
    EXPECT_EQ(snap.series.size(), res.rounds);
  else
    EXPECT_TRUE(snap.series.empty());
  const std::vector<RoundSample>& series = tele.series();
  ASSERT_EQ(series.size(), res.rounds);
  std::uint64_t sent_total = 0, prev_sent = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const RoundSample& r = series[i];
    EXPECT_EQ(r.round, i);                 // derived: global sample index
    EXPECT_EQ(r.delivered, prev_sent);     // derived: last round's sent
    EXPECT_LE(r.with_input, r.active);     // every receiver steps
    sent_total += r.sent;
    prev_sent = r.sent;
  }
  EXPECT_EQ(sent_total, res.messages);

  if (tele.full()) {
    // Per-arc congestion: exact max and population over all directed arcs.
    std::uint64_t max_arc = 0;
    for (const std::uint64_t c : res.arc_sends) max_arc = std::max(max_arc, c);
    EXPECT_EQ(snap.arc_congestion.count, res.arc_sends.size());
    EXPECT_EQ(snap.arc_congestion.max, max_arc);
    // Non-empty inboxes exist iff messages flowed.
    EXPECT_EQ(snap.inbox_sizes.count > 0, res.messages > 0);
  } else {
    EXPECT_EQ(snap.arc_congestion.count, 0u);
    EXPECT_EQ(snap.inbox_sizes.count, 0u);
    EXPECT_TRUE(snap.annotations.empty());
  }
}

TEST(Telemetry, TotalsAgreeWithRunResultOnDifferentialGrid) {
  for (const std::string spec : kSpecs) {
    SCOPED_TRACE(spec);
    const WeightedGraph g = scenario::build_weighted_graph(spec);
    for (const std::size_t threads : kThreads) {
      SCOPED_TRACE(threads);
      ThreadPool pool(threads);
      for (const bool force_dense : {false, true}) {
        SCOPED_TRACE(force_dense);
        for (const TelemetryMode mode :
             {TelemetryMode::kRounds, TelemetryMode::kFull}) {
          SCOPED_TRACE(to_string(mode));
          Telemetry tele(mode);
          apps::DistributedBellmanFord alg(g, 0);
          RunOptions opts;
          opts.pool = &pool;
          opts.force_dense = force_dense;
          opts.telemetry = &tele;
          Network net(g.graph());
          const RunResult res = net.run(alg, opts);
          ASSERT_TRUE(res.finished);
          expect_exact(tele, res, alg.name());
          // Recording must not perturb the run: a bare re-run agrees.
          apps::DistributedBellmanFord bare_alg(g, 0);
          RunOptions bare = opts;
          bare.telemetry = nullptr;
          Network bare_net(g.graph());
          const RunResult ref = bare_net.run(bare_alg, bare);
          EXPECT_EQ(res.rounds, ref.rounds);
          EXPECT_EQ(res.messages, ref.messages);
          EXPECT_EQ(res.arc_sends, ref.arc_sends);
        }
      }
    }
  }
}

TEST(Telemetry, DenseRunsRecordWakeupsToo) {
  // Regression: run_handlers used to be called with record_wakeups=sparse,
  // so dense-engine runs silently dropped wakeup telemetry — the series'
  // wakeups column was always 0 under --engine=dense while sparse runs
  // reported real values, breaking dense-vs-sparse comparability. BatchBfs
  // drives real request_wakeup traffic (per-node FIFO backlogs); the two
  // engines must now report identical, nonzero wakeup columns.
  const Graph g = scenario::build_graph(kSpecs[0]);
  const auto sources = apps::default_sources(g, 8);
  const auto series_of = [&](bool force_dense) {
    Telemetry tele(TelemetryMode::kRounds);
    algo::BatchBfs alg(g, sources);
    RunOptions opts;
    opts.force_dense = force_dense;
    opts.telemetry = &tele;
    Network net(g);
    net.run(alg, opts);
    return tele.series();
  };
  const std::vector<RoundSample> dense = series_of(true);
  const std::vector<RoundSample> sparse = series_of(false);
  ASSERT_EQ(dense.size(), sparse.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(dense[i].wakeups, sparse[i].wakeups) << i;
    total += dense[i].wakeups;
  }
  EXPECT_GT(total, 0u);
}

TEST(Telemetry, TruncatedRunAccountsUndeliveredSends) {
  // max_rounds truncation mid-flight: the final round's sends are counted
  // in result.messages but sit in the flipped write half, never delivered
  // to any handler. RunResult::undelivered reconciles the books, and the
  // recorder agrees: sum(sent) == messages, sum(delivered) == messages -
  // undelivered, undelivered == the final round's sent.
  const WeightedGraph g = scenario::build_weighted_graph(kSpecs[0]);
  const auto check_books = [](const Telemetry& tele, const RunResult& res) {
    std::uint64_t sent = 0, delivered = 0;
    for (const RoundSample& r : tele.series()) {
      sent += r.sent;
      delivered += r.delivered;
    }
    EXPECT_EQ(sent, res.messages);
    EXPECT_EQ(delivered, res.messages - res.undelivered);
    ASSERT_FALSE(tele.series().empty());
    EXPECT_EQ(res.undelivered, tele.series().back().sent);
  };
  RunResult dense_res, sparse_res;
  for (const bool force_dense : {false, true}) {
    SCOPED_TRACE(force_dense);
    Telemetry tele(TelemetryMode::kRounds);
    apps::DistributedBellmanFord alg(g, 0);
    RunOptions opts;
    opts.max_rounds = 6;  // well inside the flood: waves still in flight
    opts.force_dense = force_dense;
    opts.telemetry = &tele;
    Network net(g.graph());
    const RunResult res = net.run(alg, opts);
    EXPECT_FALSE(res.finished);
    EXPECT_EQ(res.rounds, 6u);
    EXPECT_GT(res.undelivered, 0u);
    check_books(tele, res);
    (force_dense ? dense_res : sparse_res) = res;
  }
  EXPECT_EQ(dense_res.undelivered, sparse_res.undelivered);
  // Finished runs keep the same invariant (the final round may or may not
  // leave messages in flight — quiescence-terminated floods leave none).
  Telemetry tele(TelemetryMode::kRounds);
  apps::DistributedBellmanFord alg(g, 0);
  RunOptions opts;
  opts.telemetry = &tele;
  Network net(g.graph());
  const RunResult res = net.run(alg, opts);
  ASSERT_TRUE(res.finished);
  check_books(tele, res);
}

TEST(Telemetry, SweepModesMatchTheEngine) {
  const WeightedGraph g = scenario::build_weighted_graph(kSpecs[0]);
  // Dense sweep: every round records kDense; Bellman–Ford is purely
  // message-driven, so its wakeup column is genuinely zero (the dense
  // engine still RECORDS wakeups — see DenseRunsRecordWakeupsToo).
  {
    Telemetry tele(TelemetryMode::kRounds);
    apps::DistributedBellmanFord alg(g, 0);
    RunOptions opts;
    opts.force_dense = true;
    opts.telemetry = &tele;
    Network net(g.graph());
    net.run(alg, opts);
    for (const RoundSample& r : tele.series()) {
      EXPECT_EQ(r.sweep, SweepMode::kDense);
      EXPECT_EQ(r.wakeups, 0u);
      EXPECT_EQ(r.active, g.graph().node_count());
    }
  }
  // Event-driven: round 0 is the dense start() sweep, later rounds use an
  // active mode; active counts stay within [with_input, n].
  {
    Telemetry tele(TelemetryMode::kRounds);
    apps::DistributedBellmanFord alg(g, 0);
    RunOptions opts;
    opts.telemetry = &tele;
    Network net(g.graph());
    net.run(alg, opts);
    const auto& series = tele.series();
    ASSERT_FALSE(series.empty());
    EXPECT_EQ(series[0].sweep, SweepMode::kDense);
    for (std::size_t i = 1; i < series.size(); ++i) {
      EXPECT_NE(series[i].sweep, SweepMode::kDense);
      EXPECT_LE(series[i].active, g.graph().node_count());
    }
  }
}

TEST(Telemetry, MultiRunSeriesHasGlobalRoundsAndPerRunDelivery) {
  // One recorder across two engine executions: rounds index the global
  // series, spans tile it, and the delivered derivation resets at the run
  // boundary (a new run's round 0 delivers nothing).
  const WeightedGraph g = scenario::build_weighted_graph(kSpecs[3]);
  for (const TelemetryMode mode :
       {TelemetryMode::kRounds, TelemetryMode::kFull}) {
    SCOPED_TRACE(to_string(mode));
    Telemetry tele(mode);
    RunResult first, second;
    {
      apps::DistributedBellmanFord alg(g, 0);
      RunOptions opts;
      opts.telemetry = &tele;
      Network net(g.graph());
      first = net.run(alg, opts);
    }
    {
      apps::DistributedBellmanFord alg(g, 5);
      RunOptions opts;
      opts.telemetry = &tele;
      Network net(g.graph());
      second = net.run(alg, opts);
    }
    const TelemetrySnapshot snap = tele.snapshot();
    EXPECT_EQ(snap.rounds, first.rounds + second.rounds);
    EXPECT_EQ(snap.messages, first.messages + second.messages);
    ASSERT_EQ(snap.spans.size(), 2u);
    EXPECT_EQ(snap.spans[0].first_round, 0u);
    EXPECT_EQ(snap.spans[1].first_round, first.rounds);
    ASSERT_EQ(snap.series.size(), first.rounds + second.rounds);
    for (std::size_t i = 0; i < snap.series.size(); ++i)
      EXPECT_EQ(snap.series[i].round, i);
    const RoundSample& boundary = snap.series[first.rounds];
    EXPECT_EQ(boundary.delivered, 0u);  // new run: nothing in flight
    // The second run's per-run snapshot covers only its own slice.
    ASSERT_TRUE(second.telemetry.has_value());
    EXPECT_EQ(second.telemetry->rounds, second.rounds);
    EXPECT_EQ(second.telemetry->messages, second.messages);
    ASSERT_EQ(second.telemetry->spans.size(), 1u);
    EXPECT_EQ(second.telemetry->spans[0].first_round, first.rounds);
  }
}

/// Sends twice on one arc at round 2 — the engine aborts the run by
/// throwing from do_send, leaving the recorder mid-span.
class DoubleSender : public Algorithm {
 public:
  std::string name() const override { return "double-sender"; }
  void start(Context& ctx) override {
    if (ctx.id() == 0) ctx.send(ctx.arc_begin(), {1, 0, 0});
  }
  void step(Context& ctx) override {
    if (ctx.id() != 0 || ctx.round() < 2) {
      if (!ctx.inbox().empty()) ctx.send(ctx.inbox()[0].via, {1, 0, 0});
      return;
    }
    ctx.send(ctx.arc_begin(), {1, 0, 0});
    ctx.send(ctx.arc_begin(), {2, 0, 0});
  }
  bool done() const override { return false; }
};

TEST(Telemetry, AbortedRunSamplesAreDroppedByTheNextRun) {
  // A run that dies mid-flight never reaches end_run; whatever it staged
  // must not leak into the next run's series (the round = index derivation
  // depends on spans and samples tiling exactly).
  const WeightedGraph g = scenario::build_weighted_graph(kSpecs[3]);
  Telemetry tele(TelemetryMode::kRounds);
  {
    DoubleSender bad;
    RunOptions opts;
    opts.telemetry = &tele;
    Network net(g.graph());
    EXPECT_THROW(net.run(bad, opts), std::logic_error);
  }
  apps::DistributedBellmanFord alg(g, 0);
  RunOptions opts;
  opts.telemetry = &tele;
  Network net(g.graph());
  const RunResult res = net.run(alg, opts);
  ASSERT_TRUE(res.finished);
  expect_exact(tele, res, alg.name());
}

TEST(Telemetry, ParallelWorkersRecordIdentically) {
  // n >= 512 crosses the engine's parallel threshold, so the per-worker
  // recording scratch (stepped counters, inbox histograms) is written
  // concurrently — the case the TSAN CI job re-runs. The recorded series
  // and histograms must be bit-identical to the single-worker run.
  const WeightedGraph g = scenario::build_weighted_graph(
      "random_regular:n=600,d=4,seed=9,weights=1..50");
  auto record = [&](std::size_t threads) {
    ThreadPool pool(threads);
    Telemetry tele(TelemetryMode::kFull);
    apps::DistributedBellmanFord alg(g, 0);
    RunOptions opts;
    opts.pool = &pool;
    opts.telemetry = &tele;
    Network net(g.graph());
    const RunResult res = net.run(alg, opts);
    expect_exact(tele, res, alg.name());
    return tele.snapshot();
  };
  const TelemetrySnapshot one = record(1);
  const TelemetrySnapshot eight = record(8);
  EXPECT_EQ(one.rounds, eight.rounds);
  EXPECT_EQ(one.messages, eight.messages);
  ASSERT_EQ(one.series.size(), eight.series.size());
  for (std::size_t i = 0; i < one.series.size(); ++i) {
    EXPECT_EQ(one.series[i].active, eight.series[i].active) << i;
    EXPECT_EQ(one.series[i].with_input, eight.series[i].with_input) << i;
    EXPECT_EQ(one.series[i].sent, eight.series[i].sent) << i;
  }
  EXPECT_EQ(one.inbox_sizes.count, eight.inbox_sizes.count);
  EXPECT_EQ(one.inbox_sizes.p50, eight.inbox_sizes.p50);
  EXPECT_EQ(one.inbox_sizes.max, eight.inbox_sizes.max);
  EXPECT_EQ(one.arc_congestion.max, eight.arc_congestion.max);
}

TEST(Telemetry, MstPhasesAppearAsSpansAndAnnotations) {
  const WeightedGraph g = scenario::build_weighted_graph(kSpecs[3]);
  Telemetry tele(TelemetryMode::kFull);
  apps::MstOptions opts;
  opts.telemetry = &tele;
  const apps::MstReport rep = apps::distributed_mst(g, opts);
  ASSERT_TRUE(rep.finished);
  const TelemetrySnapshot snap = tele.snapshot();
  EXPECT_EQ(snap.rounds, rep.rounds);
  EXPECT_EQ(snap.messages, rep.messages);
  std::set<std::string> span_names;
  std::uint64_t span_rounds = 0;
  for (const SpanSample& s : snap.spans) {
    span_names.insert(s.name);
    span_rounds += s.rounds;
  }
  EXPECT_EQ(span_rounds, rep.rounds);  // spans tile the series
  EXPECT_TRUE(span_names.count("mst/announce"));
  EXPECT_TRUE(span_names.count("mst/connect"));
  // One "mst/phase=<p>" annotation per announce sweep (the merging phases
  // plus the final verification sweep rep.phases does not count),
  // deduplicated across fragment leaders, in phase order.
  std::vector<std::string> phases;
  std::set<std::pair<std::uint64_t, std::string>> keys;
  for (const Annotation& a : snap.annotations) {
    EXPECT_TRUE(keys.emplace(a.round, a.label).second) << "duplicate event";
    if (a.label.rfind("mst/phase=", 0) == 0) phases.push_back(a.label);
  }
  ASSERT_EQ(phases.size(), rep.phases + 1u);
  for (std::uint32_t p = 0; p < phases.size(); ++p)
    EXPECT_EQ(phases[p], "mst/phase=" + std::to_string(p + 1));
}

TEST(Telemetry, BatchSsspGenerationsAreAnnotated) {
  const WeightedGraph g = scenario::build_weighted_graph(kSpecs[0]);
  Telemetry tele(TelemetryMode::kFull);
  apps::BatchSsspOptions opts;
  opts.telemetry = &tele;
  const auto sources = apps::default_sources(g.graph(), 4);
  const apps::BatchSsspReport rep = apps::batch_sssp(g, sources, opts);
  ASSERT_TRUE(rep.finished);
  std::set<std::string> labels;
  for (const Annotation& a : tele.snapshot().annotations)
    labels.insert(a.label);
  for (std::size_t s = 0; s < sources.size(); ++s)
    EXPECT_TRUE(labels.count("batch-sssp/gen=" + std::to_string(s)))
        << "missing generation " << s;
}

TEST(Telemetry, AnnotationsAreOffOutsideFullMode) {
  const WeightedGraph g = scenario::build_weighted_graph(kSpecs[3]);
  Telemetry tele(TelemetryMode::kRounds);
  apps::MstOptions opts;
  opts.telemetry = &tele;
  apps::distributed_mst(g, opts);
  EXPECT_TRUE(tele.snapshot().annotations.empty());
}

TEST(Telemetry, HistogramSummariesAreNearestRank) {
  const HistogramSummary zero = summarize_counts({});
  EXPECT_EQ(zero.count, 0u);
  EXPECT_EQ(zero.max, 0u);

  // 100 values 1..100: nearest-rank percentiles are exact sample values.
  std::vector<std::uint64_t> v;
  for (std::uint64_t i = 100; i >= 1; --i) v.push_back(i);
  const HistogramSummary h = summarize_counts(v);
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.p50, 50u);
  EXPECT_EQ(h.p90, 90u);
  EXPECT_EQ(h.p99, 99u);
  EXPECT_EQ(h.max, 100u);

  // Bucketed form: buckets[v] = multiplicity. 10 zeros, 5 ones, 1 nine.
  const std::vector<std::uint64_t> buckets = {10, 5, 0, 0, 0, 0, 0, 0, 0, 1};
  const HistogramSummary b = summarize_buckets(buckets);
  EXPECT_EQ(b.count, 16u);
  EXPECT_EQ(b.p50, 0u);
  EXPECT_EQ(b.p90, 1u);
  EXPECT_EQ(b.max, 9u);
}

TEST(Telemetry, ModeParsingRoundTrips) {
  for (const TelemetryMode mode :
       {TelemetryMode::kOff, TelemetryMode::kRounds, TelemetryMode::kFull})
    EXPECT_EQ(parse_telemetry_mode(to_string(mode)), mode);
  EXPECT_THROW(parse_telemetry_mode("verbose"), std::invalid_argument);
}

/// Build a composite full-mode snapshot (MST + SSSP on one recorder) —
/// multiple spans, annotations, timers — for the exporter tests.
TelemetrySnapshot composite_snapshot(Telemetry& tele) {
  const WeightedGraph g =
      scenario::build_weighted_graph("dumbbell:s=24,bridges=3,weights=1..9");
  apps::MstOptions mst_opts;
  mst_opts.telemetry = &tele;
  apps::distributed_mst(g, mst_opts);
  apps::SsspOptions sssp_opts;
  sssp_opts.telemetry = &tele;
  apps::distributed_sssp(g, 0, sssp_opts);
  return tele.snapshot();
}

TEST(TelemetryExport, NdjsonLinesAreSelfContainedJson) {
  Telemetry tele(TelemetryMode::kFull);
  const TelemetrySnapshot snap = composite_snapshot(tele);
  std::ostringstream out;
  write_metrics_ndjson(out, snap);
  std::istringstream in(out.str());
  std::string line;
  std::size_t headers = 0, rounds = 0, annotations = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    const JsonValue obj = parse_json(line);  // throws on malformed output
    ASSERT_TRUE(obj.is_object());
    const std::string type = obj.str("type");
    if (type == "header") {
      ++headers;
      EXPECT_EQ(obj.str("mode"), "full");
      EXPECT_EQ(static_cast<std::uint64_t>(obj.num("rounds")), snap.rounds);
      EXPECT_EQ(static_cast<std::uint64_t>(obj.num("messages")),
                snap.messages);
      const JsonValue* spans = obj.find("spans");
      ASSERT_NE(spans, nullptr);
      EXPECT_EQ(spans->items.size(), snap.spans.size());
    } else if (type == "round") {
      ++rounds;
    } else {
      EXPECT_EQ(type, "annotation");
      ++annotations;
    }
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_EQ(rounds, snap.series.size());
  EXPECT_EQ(annotations, snap.annotations.size());
}

TEST(TelemetryExport, ChromeTraceIsValidAndCarriesTheStructure) {
  Telemetry tele(TelemetryMode::kFull);
  const TelemetrySnapshot snap = composite_snapshot(tele);
  std::ostringstream out;
  write_chrome_trace(out, snap);
  const JsonValue doc = parse_json(out.str());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::size_t round_slices = 0, phase_slices = 0, run_slices = 0,
              instants = 0;
  for (const JsonValue& e : events->items) {
    const std::string ph = e.str("ph");
    const std::string name = e.str("name");
    if (ph == "X" && name.rfind("round ", 0) == 0)
      ++round_slices;
    else if (ph == "X" &&
             (name == "step" || name == "delivery" || name == "bookkeep"))
      ++phase_slices;
    else if (ph == "X" && name.rfind("run:", 0) == 0)
      ++run_slices;
    else if (ph == "i")
      ++instants;
  }
  EXPECT_EQ(round_slices, snap.series.size());
  EXPECT_EQ(run_slices, snap.spans.size());
  EXPECT_EQ(instants, snap.annotations.size());
  EXPECT_GT(phase_slices, 0u);  // kFull: timers become nested slices
}

TEST(TelemetryExport, RoundsModeExportsHaveNoTimers) {
  // A kRounds recorder's own snapshot still exports cleanly: rounds carry
  // counters, timers are zero, and the trace stays parseable.
  const WeightedGraph g = scenario::build_weighted_graph(kSpecs[0]);
  Telemetry tele(TelemetryMode::kRounds);
  apps::SsspOptions opts;
  opts.telemetry = &tele;
  apps::distributed_sssp(g, 0, opts);
  const TelemetrySnapshot snap = tele.snapshot();
  ASSERT_EQ(snap.series.size(), snap.rounds);
  std::ostringstream ndjson, trace;
  write_metrics_ndjson(ndjson, snap);
  write_chrome_trace(trace, snap);
  std::istringstream in(ndjson.str());
  std::string line;
  while (std::getline(in, line)) {
    const JsonValue obj = parse_json(line);
    if (obj.str("type") != "round") continue;
    EXPECT_EQ(obj.num("step_ns"), 0.0);
    EXPECT_EQ(obj.num("delivery_ns"), 0.0);
  }
  const JsonValue doc = parse_json(trace.str());
  ASSERT_NE(doc.find("traceEvents"), nullptr);
}

}  // namespace
}  // namespace fc::congest
