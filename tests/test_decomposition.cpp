#include "core/decomposition.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/mincut.hpp"
#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace fc::core {
namespace {

TEST(Decomposition, SinglePartIsTrivial) {
  const Graph g = gen::cycle(12);
  const auto dec = decompose(g, /*lambda=*/2);
  EXPECT_EQ(dec.parts, 1u);
  EXPECT_TRUE(dec.all_spanning());
  EXPECT_EQ(dec.trees[0].covered, g.node_count());
}

TEST(Decomposition, PartsAreEdgeDisjointAndComplete) {
  Rng rng(1);
  const Graph g = gen::random_regular(128, 32, rng);
  DecompositionOptions opts;
  opts.C = 1.0;
  const auto dec = decompose(g, 32, opts);
  EXPECT_GE(dec.parts, 2u);
  std::vector<int> owner(g.edge_count(), -1);
  std::size_t covered = 0;
  for (std::uint32_t i = 0; i < dec.parts; ++i) {
    for (EdgeId e : dec.partition.parts[i].parent_edge) {
      EXPECT_EQ(owner[e], -1);
      owner[e] = static_cast<int>(i);
      ++covered;
    }
  }
  EXPECT_EQ(covered, g.edge_count());
}

TEST(Decomposition, SpanningOnHighlyConnectedGraphs) {
  // Theorem 2: with λ' = λ/(C ln n) parts, each part spans w.h.p.
  Rng rng(2);
  const Graph g = gen::random_regular(256, 48, rng);
  const auto dec = decompose(g, 48);
  EXPECT_TRUE(dec.all_spanning()) << "parts=" << dec.parts;
  for (std::uint32_t i = 0; i < dec.parts; ++i)
    EXPECT_TRUE(is_connected(dec.partition.parts[i].graph));
}

TEST(Decomposition, DiameterWithinTheorem2Budget) {
  Rng rng(3);
  const Graph g = gen::random_regular(256, 32, rng);
  DecompositionOptions opts;
  opts.C = 2.0;
  const auto dec = decompose(g, 32, opts);
  ASSERT_TRUE(dec.all_spanning());
  const double budget =
      Decomposition::diameter_budget(g.node_count(), min_degree(g), opts.C);
  // Tree depth upper-bounds half the subgraph diameter; use 2x slack over
  // the Theorem 2 constant (the proof constant is ~20).
  EXPECT_LE(dec.max_tree_depth(), 2.0 * budget)
      << "depth=" << dec.max_tree_depth() << " budget=" << budget;
}

TEST(Decomposition, DeterministicInSeed) {
  const Graph g = gen::circulant(100, 10);
  DecompositionOptions opts;
  opts.seed = 99;
  const auto d1 = decompose(g, 20, opts);
  const auto d2 = decompose(g, 20, opts);
  EXPECT_EQ(d1.partition.color, d2.partition.color);
  EXPECT_EQ(d1.max_tree_depth(), d2.max_tree_depth());
}

TEST(Decomposition, LowLambdaFewerParts) {
  const Graph g = gen::circulant(100, 10);
  const auto few = decompose(g, 4);
  const auto more = decompose(g, 20);
  EXPECT_LE(few.parts, more.parts);
}

TEST(Decomposition, ChecksCostAccounted) {
  Rng rng(4);
  const Graph g = gen::random_regular(128, 16, rng);
  const auto dec = decompose(g, 16);
  EXPECT_GT(dec.check_rounds, 0u);
  EXPECT_GT(dec.messages, 0u);
}

TEST(Decomposition, DumbbellWithTrueLambdaUsuallySplitsBadly) {
  // On the dumbbell with 2 bridges, overestimating λ as δ = s-1 produces
  // parts that miss the bridges and cannot span — exactly the failure the
  // oblivious search must detect.
  const Graph g = gen::dumbbell(32, 2);
  DecompositionOptions opts;
  opts.C = 0.5;  // force many parts relative to the true λ = 2
  const auto dec = decompose(g, /*claimed lambda=*/31, opts);
  EXPECT_GE(dec.parts, 2u);
  EXPECT_FALSE(dec.all_spanning());
}

TEST(Decomposition, BudgetFormula) {
  EXPECT_DOUBLE_EQ(Decomposition::diameter_budget(0, 5, 2.0), 0.0);
  EXPECT_GT(Decomposition::diameter_budget(100, 5, 2.0),
            Decomposition::diameter_budget(100, 10, 2.0));
}

class DecompositionSweep
    : public ::testing::TestWithParam<std::tuple<NodeId, std::uint32_t>> {};

TEST_P(DecompositionSweep, SpansAcrossParameters) {
  auto [n, d] = GetParam();
  Rng rng(mix64(n, d));
  const Graph g = gen::random_regular(n, d, rng);
  const auto dec = decompose(g, d);
  EXPECT_TRUE(dec.all_spanning()) << "n=" << n << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(
    Params, DecompositionSweep,
    ::testing::Values(std::tuple<NodeId, std::uint32_t>{64, 16},
                      std::tuple<NodeId, std::uint32_t>{128, 24},
                      std::tuple<NodeId, std::uint32_t>{256, 40},
                      std::tuple<NodeId, std::uint32_t>{200, 20}));

}  // namespace
}  // namespace fc::core
