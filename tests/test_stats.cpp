#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fc {
namespace {

TEST(Summarize, EmptyInput) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> xs{5.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 5);
  EXPECT_EQ(s.max, 5);
  EXPECT_EQ(s.mean, 5);
  EXPECT_EQ(s.stddev, 0);
  EXPECT_EQ(s.median, 5);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, DoesNotMutateInput) {
  const std::vector<double> xs{3, 1, 2};
  (void)summarize(xs);
  EXPECT_EQ(xs[0], 3);
  EXPECT_EQ(xs[1], 1);
}

TEST(PercentileSorted, Interpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.25), 2.5);
}

TEST(PercentileSorted, ClampsQuantile) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 2.0), 3.0);
}

TEST(Accumulator, MatchesBatchStatistics) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  Accumulator acc;
  for (double x : xs) acc.add(x);
  const auto s = summarize(xs);
  EXPECT_EQ(acc.count(), s.count);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-12);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-12);
  EXPECT_EQ(acc.min(), s.min);
  EXPECT_EQ(acc.max(), s.max);
}

TEST(Accumulator, VarianceOfConstantIsZero) {
  Accumulator acc;
  for (int i = 0; i < 10; ++i) acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(FitLine, ExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{3, 5, 7, 9};  // y = 1 + 2x
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitLine, TooFewPoints) {
  const std::vector<double> xs{1};
  const std::vector<double> ys{2};
  const auto f = fit_line(xs, ys);
  EXPECT_EQ(f.slope, 0);
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 1; x <= 64; x *= 2) {
    xs.push_back(x);
    ys.push_back(5.0 * x * x);  // y = 5 x^2
  }
  const auto f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 5.0, 1e-6);
}

TEST(FitPowerLaw, IgnoresNonPositive) {
  const std::vector<double> xs{0, 1, 2, 4};
  const std::vector<double> ys{-1, 1, 2, 4};
  const auto f = fit_power_law(xs, ys);  // only (1,1),(2,2),(4,4) used
  EXPECT_NEAR(f.slope, 1.0, 1e-9);
}

TEST(Harmonic, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_NEAR(harmonic(2), 1.5, 1e-12);
  EXPECT_NEAR(harmonic(100), 5.187377517639621, 1e-9);
}

}  // namespace
}  // namespace fc
