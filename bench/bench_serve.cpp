// Serving-path benchmark: drives a LIVE scenario_serve daemon over a
// stdin/stdout pipe pair — the real transport, fork/exec and all — and
// measures end-to-end query latency and throughput.
//
//   ./bench_serve                          # closed loop, default workload
//   ./bench_serve --smoke                  # tiny CI smoke (validates too)
//   ./bench_serve --mode=open --burst=16   # open loop: burst + drain
//
// Closed loop sends one query and waits for its response — per-request
// latency percentiles (nearest-rank, like every histogram in the repo) and
// the serial throughput. Open loop sends `burst` queries back-to-back and
// then drains the burst's responses — with --window > 1 the daemon
// coalesces same-graph bfs/sssp queries inside a window into one batch
// execution, so open-loop throughput shows what the batching window buys.
//
// Every response line is JSON-validated (fc::parse_json + ok check): the
// benchmark doubles as an end-to-end protocol check, and --smoke exits
// nonzero when any response fails to parse or reports an error.
//
// Results land in BENCH_serve.json (one row per measured phase) next to
// the table on stdout.
//
// Options:
//   --daemon=<path>  scenario_serve binary (default "./scenario_serve")
//   --spec=<spec>    workload graph (default rmat:n=1024,deg=8,seed=1,
//                    weights=1..100)
//   --algo=<name>    repeatable; queried round-robin (default bfs, sssp)
//   --requests=<n>   measured queries per phase (default 200)
//   --warmup=<n>     unmeasured warm-up queries (default 10)
//   --mode=<m>       "closed" (default) or "open"
//   --burst=<n>      open-loop in-flight burst (default 32)
//   --window=<n>     daemon batching window (default 1 closed, burst open)
//   --cache=<dir>    corpus directory handed to the daemon
//   --smoke          CI mode: tiny counts, strict validation

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "congest/telemetry.hpp"
#include "util/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// A scenario_serve child on a stdin/stdout pipe pair.
class DaemonPipe {
 public:
  bool start(const std::string& path, const std::vector<std::string>& args) {
    int to_child[2], from_child[2];
    if (pipe(to_child) != 0 || pipe(from_child) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(path.c_str()));
      for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      execv(path.c_str(), argv.data());
      std::perror("bench_serve: execv");
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    in_ = to_child[1];
    out_ = from_child[0];
    return true;
  }

  bool send(const std::string& line) {
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = write(in_, out.data() + off, out.size() - off);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv(std::string& line) {
    while (true) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[8192];
      const ssize_t n = read(out_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int stop() {
    send("{\"cmd\": \"shutdown\"}");
    if (in_ >= 0) close(in_);
    std::string drain;
    while (recv(drain)) {
    }
    if (out_ >= 0) close(out_);
    int status = 0;
    if (pid_ > 0) waitpid(pid_, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  pid_t pid_ = -1;
  int in_ = -1;
  int out_ = -1;
  std::string buffer_;
};

struct PhaseResult {
  std::string label;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t invalid = 0;  // lines that failed JSON validation
  std::uint64_t cache_hits = 0;
  std::uint64_t engine_reused = 0;
  std::uint64_t coalesced_max = 1;
  double seconds = 0;
  fc::congest::HistogramSummary latency_us;  // closed loop only
};

/// Validate one response line; tallies into `r`. Returns false only on a
/// line that is not valid JSON (protocol breakage, not a typed error).
bool tally(const std::string& line, PhaseResult& r) {
  fc::JsonValue v;
  try {
    v = fc::parse_json(line);
  } catch (const std::exception&) {
    ++r.invalid;
    return false;
  }
  if (v.flag("ok")) {
    ++r.ok;
    if (v.flag("cache_hit")) ++r.cache_hits;
    if (v.flag("engine_reused")) ++r.engine_reused;
    r.coalesced_max = std::max(
        r.coalesced_max, static_cast<std::uint64_t>(v.num("coalesced", 1)));
  } else {
    ++r.errors;
  }
  return true;
}

std::string query_line(std::uint64_t id, const std::string& spec,
                       const std::string& algo, std::uint64_t seed) {
  fc::JsonWriter w;
  w.begin_object()
      .field("id", id)
      .field("spec", spec)
      .field("algo", algo)
      .field("seed", seed)
      .end_object();
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fc;
  const Options opts(argc, argv);

  static const std::vector<std::string> known_flags = {
      "daemon", "spec",  "algo",   "requests", "warmup",
      "mode",   "burst", "window", "cache",    "smoke"};
  for (const auto& key : opts.keys()) {
    if (std::find(known_flags.begin(), known_flags.end(), key) ==
        known_flags.end()) {
      std::cerr << "bench_serve: unknown option '--" << key
                << "'; known options: --daemon --spec --algo --requests "
                   "--warmup --mode --burst --window --cache --smoke\n";
      return 2;
    }
  }

  const bool smoke = opts.get_bool("smoke");
  const std::string daemon = opts.get("daemon", "./scenario_serve");
  const std::string spec =
      opts.get("spec", smoke ? "rmat:n=256,deg=6,seed=1,weights=1..100"
                             : "rmat:n=1024,deg=8,seed=1,weights=1..100");
  std::vector<std::string> algos = opts.get_all("algo");
  if (algos.empty()) algos = {"bfs", "sssp"};
  const std::uint64_t requests =
      static_cast<std::uint64_t>(opts.get_int("requests", smoke ? 24 : 200));
  const std::uint64_t warmup =
      static_cast<std::uint64_t>(opts.get_int("warmup", smoke ? 4 : 10));
  const std::string mode = opts.get("mode", "closed");
  if (mode != "closed" && mode != "open") {
    std::cerr << "bench_serve: --mode must be 'closed' or 'open'\n";
    return 2;
  }
  const std::uint64_t burst =
      static_cast<std::uint64_t>(opts.get_int("burst", 32));
  const std::uint64_t window = static_cast<std::uint64_t>(
      opts.get_int("window", mode == "open" ? static_cast<int>(burst) : 1));
  const std::string cache = opts.get("cache", "");

  bench::banner("serve",
                "End-to-end serving path: live scenario_serve daemon over a "
                "pipe, per-query latency and throughput.");

  std::vector<std::string> daemon_args = {"--window=" +
                                          std::to_string(window)};
  if (!cache.empty()) daemon_args.push_back("--cache=" + cache);
  DaemonPipe pipe;
  if (!pipe.start(daemon, daemon_args)) {
    std::cerr << "bench_serve: cannot start daemon '" << daemon << "'\n";
    return 2;
  }

  bench::JsonReport report("serve");
  bench::add_run_metadata(report);
  report.meta("mode", mode)
      .meta("spec", spec)
      .meta("window", window)
      .meta("daemon", daemon);

  Table table({"phase", "requests", "ok", "err", "hits", "reused", "qps",
               "p50 us", "p99 us", "max us", "coalesced"});
  bool protocol_ok = true;
  std::uint64_t next_id = 1;

  // Warm-up: populate the pool (and corpus) outside the measurement. With
  // a batching window the daemon holds queries until the window fills, so
  // force a flush after each one to keep this loop request/response.
  for (std::uint64_t i = 0; i < warmup && protocol_ok; ++i) {
    PhaseResult sink;
    std::string resp;
    protocol_ok =
        pipe.send(query_line(next_id++, spec, algos[i % algos.size()], i)) &&
        (window <= 1 || pipe.send("{\"cmd\": \"flush\"}")) &&
        pipe.recv(resp) && tally(resp, sink);
  }
  if (!protocol_ok) {
    std::cerr << "bench_serve: daemon failed during warm-up\n";
    pipe.stop();
    return 2;
  }

  std::vector<PhaseResult> phases;
  if (mode == "closed") {
    PhaseResult r;
    r.label = "closed";
    r.requests = requests;
    std::vector<std::uint64_t> lat_us;
    lat_us.reserve(requests);
    const auto begin = Clock::now();
    for (std::uint64_t i = 0; i < requests; ++i) {
      const auto t0 = Clock::now();
      std::string resp;
      if (!pipe.send(query_line(next_id++, spec, algos[i % algos.size()],
                                i)) ||
          !pipe.recv(resp)) {
        protocol_ok = false;
        break;
      }
      lat_us.push_back(ns_since(t0) / 1000);
      if (!tally(resp, r)) protocol_ok = false;
    }
    r.seconds = static_cast<double>(ns_since(begin)) * 1e-9;
    r.latency_us = congest::summarize_counts(lat_us);
    phases.push_back(std::move(r));
  } else {
    PhaseResult r;
    r.label = "open burst=" + std::to_string(burst);
    r.requests = requests;
    const auto begin = Clock::now();
    std::uint64_t sent = 0, received = 0;
    while (received < requests && protocol_ok) {
      const std::uint64_t batch =
          std::min<std::uint64_t>(burst, requests - sent);
      for (std::uint64_t i = 0; i < batch; ++i, ++sent)
        if (!pipe.send(query_line(next_id++, spec,
                                  algos[sent % algos.size()], sent)))
          protocol_ok = false;
      // A window smaller than the burst flushes on its own; otherwise ask.
      if (window > 1 && !pipe.send("{\"cmd\": \"flush\"}"))
        protocol_ok = false;
      for (std::uint64_t i = 0; i < batch && protocol_ok; ++i, ++received) {
        std::string resp;
        if (!pipe.recv(resp)) {
          protocol_ok = false;
          break;
        }
        if (!tally(resp, r)) protocol_ok = false;
      }
    }
    r.seconds = static_cast<double>(ns_since(begin)) * 1e-9;
    phases.push_back(std::move(r));
  }

  const int daemon_rc = pipe.stop();
  if (daemon_rc != 0) {
    std::cerr << "bench_serve: daemon exited with status " << daemon_rc
              << "\n";
    protocol_ok = false;
  }

  for (const PhaseResult& r : phases) {
    const double qps =
        r.seconds > 0 ? static_cast<double>(r.ok + r.errors) / r.seconds : 0;
    table.add_row({r.label, Table::num(std::size_t{r.requests}),
                   Table::num(std::size_t{r.ok}),
                   Table::num(std::size_t{r.errors}),
                   Table::num(std::size_t{r.cache_hits}),
                   Table::num(std::size_t{r.engine_reused}),
                   std::to_string(static_cast<std::uint64_t>(qps)),
                   Table::num(std::size_t{r.latency_us.p50}),
                   Table::num(std::size_t{r.latency_us.p99}),
                   Table::num(std::size_t{r.latency_us.max}),
                   Table::num(std::size_t{r.coalesced_max})});
    report.row()
        .add("phase", r.label)
        .add("requests", r.requests)
        .add("ok", r.ok)
        .add("errors", r.errors)
        .add("invalid", r.invalid)
        .add("cache_hits", r.cache_hits)
        .add("engine_reused", r.engine_reused)
        .add("coalesced_max", r.coalesced_max)
        .add("seconds", r.seconds)
        .add("throughput_qps", qps)
        .add("lat_p50_us", r.latency_us.p50)
        .add("lat_p99_us", r.latency_us.p99)
        .add("lat_max_us", r.latency_us.max);
  }
  table.print(std::cout);
  std::cout << "\nbench artifact: " << report.write() << "\n";

  if (!protocol_ok) {
    std::cerr << "bench_serve: protocol failure (invalid response or "
                 "daemon error)\n";
    return 1;
  }
  if (smoke) {
    for (const PhaseResult& r : phases)
      if (r.ok != r.requests || r.errors != 0 || r.invalid != 0) {
        std::cerr << "bench_serve: smoke failed (" << r.ok << "/"
                  << r.requests << " ok)\n";
        return 1;
      }
  }
  return 0;
}
