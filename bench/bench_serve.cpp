// Serving-path benchmark: drives a LIVE scenario_serve daemon over a
// stdin/stdout pipe pair — the real transport, fork/exec and all — and
// measures end-to-end query latency and throughput.
//
//   ./bench_serve                          # closed loop, default workload
//   ./bench_serve --smoke                  # tiny CI smoke (validates too)
//   ./bench_serve --mode=open --burst=16   # open loop: burst + drain
//   ./bench_serve --mode=overload          # saturation: shed vs no-shed
//
// Closed loop sends one query and waits for its response — per-request
// latency percentiles (nearest-rank, like every histogram in the repo) and
// the serial throughput. Open loop sends `burst` queries back-to-back and
// then drains the burst's responses — with --window > 1 the daemon
// coalesces same-graph bfs/sssp queries inside a window into one batch
// execution, so open-loop throughput shows what the batching window buys.
//
// Overload mode measures serving under duress: an unloaded closed-loop
// baseline, then the same workload offered in back-to-back bursts (well
// beyond the daemon's serial capacity) against a daemon WITHOUT admission
// control and against one WITH --max-pending shedding. Without shedding,
// per-response p99 grows with the offered burst (every query queues behind
// the whole burst); with it, responses stay bounded — accepted queries
// wait behind at most max-pending others, shed queries answer immediately
// with the typed `overloaded` error, and the client retries them with
// exponential backoff seeded by the response's retry_after_ms hint (the
// same policy the closed loop applies). The three rows land side by side
// in BENCH_serve.json.
//
// Every response line is JSON-validated (fc::parse_json + ok check): the
// benchmark doubles as an end-to-end protocol check, and --smoke exits
// nonzero when any response fails to parse or reports an error.
//
// Results land in BENCH_serve.json (one row per measured phase) next to
// the table on stdout.
//
// Options:
//   --daemon=<path>  scenario_serve binary (default "./scenario_serve")
//   --spec=<spec>    workload graph (default rmat:n=1024,deg=8,seed=1,
//                    weights=1..100)
//   --algo=<name>    repeatable; queried round-robin (default bfs, sssp)
//   --requests=<n>   measured queries per phase (default 200)
//   --warmup=<n>     unmeasured warm-up queries (default 10)
//   --mode=<m>       "closed" (default), "open", or "overload"
//   --burst=<n>      open/overload in-flight burst (default 32)
//   --window=<n>     daemon batching window (default 1 closed, burst open)
//   --max-pending=<n> admission bound of the overload shed phase (default 2)
//   --cache=<dir>    corpus directory handed to the daemon
//   --smoke          CI mode: tiny counts, strict validation

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "congest/telemetry.hpp"
#include "util/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// A scenario_serve child on a stdin/stdout pipe pair.
class DaemonPipe {
 public:
  bool start(const std::string& path, const std::vector<std::string>& args) {
    int to_child[2], from_child[2];
    if (pipe(to_child) != 0 || pipe(from_child) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(path.c_str()));
      for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      execv(path.c_str(), argv.data());
      std::perror("bench_serve: execv");
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    in_ = to_child[1];
    out_ = from_child[0];
    return true;
  }

  bool send(const std::string& line) {
    std::string out = line;
    out += '\n';
    return send_raw(out);
  }

  /// One write() for a whole burst: the daemon's drain-read then sees the
  /// full round before going idle, instead of mini-flushing a partial
  /// window per pipe chunk (which would serialize the round into several
  /// back-to-back executions and smear every measured latency).
  bool send_batch(const std::vector<std::string>& lines) {
    std::string out;
    for (const std::string& l : lines) {
      out += l;
      out += '\n';
    }
    return send_raw(out);
  }

  bool recv(std::string& line) {
    while (true) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[8192];
      const ssize_t n = read(out_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int stop() {
    send("{\"cmd\": \"shutdown\"}");
    if (in_ >= 0) close(in_);
    std::string drain;
    while (recv(drain)) {
    }
    if (out_ >= 0) close(out_);
    int status = 0;
    if (pid_ > 0) waitpid(pid_, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  bool send_raw(const std::string& out) {
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = write(in_, out.data() + off, out.size() - off);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  pid_t pid_ = -1;
  int in_ = -1;
  int out_ = -1;
  std::string buffer_;
};

struct PhaseResult {
  std::string label;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t invalid = 0;  // lines that failed JSON validation
  std::uint64_t cache_hits = 0;
  std::uint64_t engine_reused = 0;
  std::uint64_t coalesced_max = 1;
  /// Duress tallies: typed `overloaded` responses (shed at admission),
  /// typed `deadline-exceeded` responses, and client-side resends after an
  /// overloaded answer (exponential backoff).
  std::uint64_t shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t retries = 0;
  double seconds = 0;
  fc::congest::HistogramSummary latency_us;  // closed + overload loops
};

/// Validate one response line; tallies into `r`. Returns false only on a
/// line that is not valid JSON (protocol breakage, not a typed error).
bool tally(const std::string& line, PhaseResult& r) {
  fc::JsonValue v;
  try {
    v = fc::parse_json(line);
  } catch (const std::exception&) {
    ++r.invalid;
    return false;
  }
  if (v.flag("ok")) {
    ++r.ok;
    if (v.flag("cache_hit")) ++r.cache_hits;
    if (v.flag("engine_reused")) ++r.engine_reused;
    r.coalesced_max = std::max(
        r.coalesced_max, static_cast<std::uint64_t>(v.num("coalesced", 1)));
  } else {
    ++r.errors;
    const std::string code = v.str("error", "");
    if (code == "overloaded") ++r.shed;
    if (code == "deadline-exceeded") ++r.deadline_exceeded;
  }
  return true;
}

std::string query_line(std::uint64_t id, const std::string& spec,
                       const std::string& algo, std::uint64_t seed) {
  fc::JsonWriter w;
  w.begin_object()
      .field("id", id)
      .field("spec", spec)
      .field("algo", algo)
      .field("seed", seed)
      .end_object();
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fc;
  const Options opts(argc, argv);

  static const std::vector<std::string> known_flags = {
      "daemon", "spec",   "algo",  "requests",    "warmup", "mode",
      "burst",  "window", "cache", "max-pending", "smoke"};
  for (const auto& key : opts.keys()) {
    if (std::find(known_flags.begin(), known_flags.end(), key) ==
        known_flags.end()) {
      std::cerr << "bench_serve: unknown option '--" << key
                << "'; known options: --daemon --spec --algo --requests "
                   "--warmup --mode --burst --window --cache --max-pending "
                   "--smoke\n";
      return 2;
    }
  }

  const bool smoke = opts.get_bool("smoke");
  const std::string daemon = opts.get("daemon", "./scenario_serve");
  const std::string spec =
      opts.get("spec", smoke ? "rmat:n=256,deg=6,seed=1,weights=1..100"
                             : "rmat:n=1024,deg=8,seed=1,weights=1..100");
  std::vector<std::string> algos = opts.get_all("algo");
  if (algos.empty()) algos = {"bfs", "sssp"};
  const std::uint64_t requests =
      static_cast<std::uint64_t>(opts.get_int("requests", smoke ? 24 : 200));
  const std::uint64_t warmup =
      static_cast<std::uint64_t>(opts.get_int("warmup", smoke ? 4 : 10));
  const std::string mode = opts.get("mode", "closed");
  if (mode != "closed" && mode != "open" && mode != "overload") {
    std::cerr
        << "bench_serve: --mode must be 'closed', 'open', or 'overload'\n";
    return 2;
  }
  const std::uint64_t burst = static_cast<std::uint64_t>(
      opts.get_int("burst", mode == "overload" && smoke ? 8 : 32));
  const std::uint64_t window = static_cast<std::uint64_t>(
      opts.get_int("window", mode == "open" ? static_cast<int>(burst) : 1));
  const std::uint64_t max_pending =
      static_cast<std::uint64_t>(opts.get_int("max-pending", 2));
  const std::string cache = opts.get("cache", "");

  bench::banner("serve",
                "End-to-end serving path: live scenario_serve daemon over a "
                "pipe, per-query latency and throughput.");

  std::vector<std::string> daemon_args = {"--window=" +
                                          std::to_string(window)};
  if (!cache.empty()) daemon_args.push_back("--cache=" + cache);
  DaemonPipe pipe;
  if (!pipe.start(daemon, daemon_args)) {
    std::cerr << "bench_serve: cannot start daemon '" << daemon << "'\n";
    return 2;
  }

  bench::JsonReport report("serve");
  bench::add_run_metadata(report);
  report.meta("mode", mode)
      .meta("spec", spec)
      .meta("window", window)
      .meta("daemon", daemon);
  if (mode == "overload")
    report.meta("burst", burst).meta("max_pending", max_pending);

  Table table({"phase", "requests", "ok", "err", "shed", "retries", "hits",
               "reused", "qps", "p50 us", "p99 us", "max us", "coalesced"});
  bool protocol_ok = true;
  std::uint64_t next_id = 1;

  // Warm-up: populate the pool (and corpus) outside the measurement. With
  // a batching window the daemon holds queries until the window fills, so
  // force a flush after each one to keep this loop request/response.
  for (std::uint64_t i = 0; i < warmup && protocol_ok; ++i) {
    PhaseResult sink;
    std::string resp;
    protocol_ok =
        pipe.send(query_line(next_id++, spec, algos[i % algos.size()], i)) &&
        (window <= 1 || pipe.send("{\"cmd\": \"flush\"}")) &&
        pipe.recv(resp) && tally(resp, sink);
  }
  if (!protocol_ok) {
    std::cerr << "bench_serve: daemon failed during warm-up\n";
    pipe.stop();
    return 2;
  }

  std::vector<PhaseResult> phases;
  bool daemon_live = true;
  auto stop_daemon = [&]() {
    if (!daemon_live) return;
    daemon_live = false;
    const int rc = pipe.stop();
    pipe = DaemonPipe();
    if (rc != 0) {
      std::cerr << "bench_serve: daemon exited with status " << rc << "\n";
      protocol_ok = false;
    }
  };

  // Closed loop with the client-side duress policy: a typed `overloaded`
  // response is resent after an exponential backoff seeded by the daemon's
  // retry_after_ms hint. A lone closed-loop client never trips admission
  // control, but the policy belongs to the client, not the phase — the
  // overload mode reuses this loop as its unloaded baseline. Latency is
  // measured first-send to final answer, backoff included.
  auto run_closed = [&](const std::string& label,
                        std::uint64_t n) -> PhaseResult {
    PhaseResult r;
    r.label = label;
    r.requests = n;
    std::vector<std::uint64_t> lat_us;
    lat_us.reserve(n);
    const auto begin = Clock::now();
    for (std::uint64_t i = 0; i < n && protocol_ok; ++i) {
      const std::string line =
          query_line(next_id++, spec, algos[i % algos.size()], i);
      const auto t0 = Clock::now();
      std::uint64_t backoff_ms = 0;
      for (int attempt = 0; attempt < 10 && protocol_ok; ++attempt) {
        std::string resp;
        if (!pipe.send(line) || !pipe.recv(resp)) {
          protocol_ok = false;
          break;
        }
        bool retry = false;
        try {
          const JsonValue v = parse_json(resp);
          if (!v.flag("ok") && v.str("error", "") == "overloaded" &&
              attempt + 1 < 10) {
            retry = true;
            ++r.shed;
            ++r.retries;
            const auto hint =
                static_cast<std::uint64_t>(v.num("retry_after_ms", 1));
            backoff_ms = backoff_ms == 0 ? std::max<std::uint64_t>(hint, 1)
                                         : backoff_ms * 2;
          }
        } catch (const std::exception&) {
          // tally() below records the invalid line.
        }
        if (retry) {
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
          continue;
        }
        lat_us.push_back(ns_since(t0) / 1000);
        if (!tally(resp, r)) protocol_ok = false;
        break;
      }
    }
    r.seconds = static_cast<double>(ns_since(begin)) * 1e-9;
    r.latency_us = congest::summarize_counts(lat_us);
    return r;
  };

  // One overload phase: offer `n` queries in back-to-back bursts of `burst`
  // — far past the daemon's serial capacity — and record the latency of
  // EVERY request/response exchange, shed answers included: a fast typed
  // `overloaded` IS the product of admission control, and its latency is
  // what a real client experiences per attempt. Shed queries are retried
  // with per-query exponential backoff until they complete, so `ok`
  // converges to `n` and the goodput cost of shedding shows up in
  // `seconds`, not in lost answers.
  auto run_overload = [&](const std::string& label,
                          std::uint64_t n) -> PhaseResult {
    struct Outstanding {
      std::string line;
      std::uint64_t backoff_ms = 0;
      int attempts = 0;
      Clock::time_point sent_at;
    };
    PhaseResult r;
    r.label = label;
    r.requests = n;
    std::vector<std::uint64_t> lat_us;
    lat_us.reserve(n);
    std::map<std::uint64_t, Outstanding> inflight;
    std::vector<std::uint64_t> retry_ids;
    std::uint64_t issued = 0, completed = 0;
    const auto begin = Clock::now();
    while (completed < n && protocol_ok) {
      // Retries lead the next burst; one sleep covers the largest backoff.
      std::vector<std::uint64_t> round = std::move(retry_ids);
      retry_ids.clear();
      std::uint64_t wait_ms = 0;
      for (const std::uint64_t id : round)
        wait_ms = std::max(wait_ms, inflight[id].backoff_ms);
      if (wait_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
      while (round.size() < burst && issued < n) {
        const std::uint64_t id = next_id++;
        inflight[id] = {
            query_line(id, spec, algos[issued % algos.size()], issued), 0, 0,
            {}};
        round.push_back(id);
        ++issued;
      }
      std::vector<std::string> lines;
      lines.reserve(round.size());
      for (const std::uint64_t id : round) {
        Outstanding& o = inflight[id];
        o.sent_at = Clock::now();
        ++o.attempts;
        lines.push_back(o.line);
      }
      if (!pipe.send_batch(lines)) protocol_ok = false;
      // Shed responses arrive immediately, accepted ones after the flush;
      // match by id, not send order.
      for (std::size_t i = 0; i < round.size() && protocol_ok; ++i) {
        std::string resp;
        if (!pipe.recv(resp)) {
          protocol_ok = false;
          break;
        }
        std::uint64_t id = 0;
        std::uint64_t hint = 1;
        bool shed_resp = false;
        try {
          const JsonValue v = parse_json(resp);
          id = static_cast<std::uint64_t>(v.num("id"));
          shed_resp = !v.flag("ok") && v.str("error", "") == "overloaded";
          if (shed_resp)
            hint = static_cast<std::uint64_t>(v.num("retry_after_ms", 1));
        } catch (const std::exception&) {
        }
        const auto it = inflight.find(id);
        if (it == inflight.end()) {
          ++r.invalid;
          protocol_ok = false;
          break;
        }
        lat_us.push_back(ns_since(it->second.sent_at) / 1000);
        // Retries lead the next round, so the daemon admits the oldest
        // queries first and every query completes eventually; the attempt
        // ceiling is a livelock safety net, not a give-up policy. Backoff
        // doubles from the daemon's hint up to a ceiling — an offered load
        // this far past capacity would otherwise sleep for seconds.
        if (shed_resp && it->second.attempts < 1000) {
          ++r.shed;
          ++r.retries;
          it->second.backoff_ms = std::min<std::uint64_t>(
              it->second.backoff_ms == 0 ? std::max<std::uint64_t>(hint, 1)
                                         : it->second.backoff_ms * 2,
              64);
          retry_ids.push_back(id);
          continue;
        }
        if (!tally(resp, r)) protocol_ok = false;
        inflight.erase(it);
        ++completed;
      }
    }
    r.seconds = static_cast<double>(ns_since(begin)) * 1e-9;
    r.latency_us = congest::summarize_counts(lat_us);
    return r;
  };

  if (mode == "closed") {
    phases.push_back(run_closed("closed", requests));
  } else if (mode == "open") {
    PhaseResult r;
    r.label = "open burst=" + std::to_string(burst);
    r.requests = requests;
    const auto begin = Clock::now();
    std::uint64_t sent = 0, received = 0;
    while (received < requests && protocol_ok) {
      const std::uint64_t batch =
          std::min<std::uint64_t>(burst, requests - sent);
      for (std::uint64_t i = 0; i < batch; ++i, ++sent)
        if (!pipe.send(query_line(next_id++, spec,
                                  algos[sent % algos.size()], sent)))
          protocol_ok = false;
      // A window smaller than the burst flushes on its own; otherwise ask.
      if (window > 1 && !pipe.send("{\"cmd\": \"flush\"}"))
        protocol_ok = false;
      for (std::uint64_t i = 0; i < batch && protocol_ok; ++i, ++received) {
        std::string resp;
        if (!pipe.recv(resp)) {
          protocol_ok = false;
          break;
        }
        if (!tally(resp, r)) protocol_ok = false;
      }
    }
    r.seconds = static_cast<double>(ns_since(begin)) * 1e-9;
    phases.push_back(std::move(r));
  } else {
    // Unloaded baseline and the no-shed overload run share the default
    // daemon (window=1, unbounded admission): every burst query is
    // accepted and queues behind the whole outstanding burst, so response
    // p99 grows with the offered load.
    phases.push_back(run_closed("unloaded", requests));
    if (protocol_ok) phases.push_back(run_overload("overload no-shed",
                                                   requests));
    stop_daemon();
    if (protocol_ok) {
      // Fresh daemon WITH admission control: at most max-pending queries
      // queue, the rest shed instantly with the typed `overloaded` error —
      // response p99 stays bounded no matter the offered burst.
      std::vector<std::string> shed_args = {
          "--window=" + std::to_string(burst),
          "--max-pending=" + std::to_string(max_pending)};
      if (!cache.empty()) shed_args.push_back("--cache=" + cache);
      if (!pipe.start(daemon, shed_args)) {
        std::cerr << "bench_serve: cannot restart daemon with shedding\n";
        protocol_ok = false;
      } else {
        daemon_live = true;
        for (std::uint64_t i = 0; i < warmup && protocol_ok; ++i) {
          PhaseResult sink;
          std::string resp;
          protocol_ok = pipe.send(query_line(next_id++, spec,
                                             algos[i % algos.size()], i)) &&
                        pipe.send("{\"cmd\": \"flush\"}") && pipe.recv(resp) &&
                        tally(resp, sink);
        }
        if (protocol_ok)
          phases.push_back(run_overload(
              "overload shed=" + std::to_string(max_pending), requests));
      }
    }
  }

  stop_daemon();

  for (const PhaseResult& r : phases) {
    // Exchanges = every request/response round-trip, resends included;
    // goodput counts only final ok answers.
    const std::uint64_t exchanges = r.ok + r.errors + r.retries;
    const double qps =
        r.seconds > 0 ? static_cast<double>(exchanges) / r.seconds : 0;
    const double goodput =
        r.seconds > 0 ? static_cast<double>(r.ok) / r.seconds : 0;
    table.add_row({r.label, Table::num(std::size_t{r.requests}),
                   Table::num(std::size_t{r.ok}),
                   Table::num(std::size_t{r.errors}),
                   Table::num(std::size_t{r.shed}),
                   Table::num(std::size_t{r.retries}),
                   Table::num(std::size_t{r.cache_hits}),
                   Table::num(std::size_t{r.engine_reused}),
                   std::to_string(static_cast<std::uint64_t>(qps)),
                   Table::num(std::size_t{r.latency_us.p50}),
                   Table::num(std::size_t{r.latency_us.p99}),
                   Table::num(std::size_t{r.latency_us.max}),
                   Table::num(std::size_t{r.coalesced_max})});
    report.row()
        .add("phase", r.label)
        .add("requests", r.requests)
        .add("ok", r.ok)
        .add("errors", r.errors)
        .add("invalid", r.invalid)
        .add("shed", r.shed)
        .add("deadline_exceeded", r.deadline_exceeded)
        .add("retries", r.retries)
        .add("cache_hits", r.cache_hits)
        .add("engine_reused", r.engine_reused)
        .add("coalesced_max", r.coalesced_max)
        .add("seconds", r.seconds)
        .add("throughput_qps", qps)
        .add("goodput_qps", goodput)
        .add("lat_p50_us", r.latency_us.p50)
        .add("lat_p99_us", r.latency_us.p99)
        .add("lat_max_us", r.latency_us.max);
  }
  table.print(std::cout);
  std::cout << "\nbench artifact: " << report.write() << "\n";

  if (!protocol_ok) {
    std::cerr << "bench_serve: protocol failure (invalid response or "
                 "daemon error)\n";
    return 1;
  }
  if (smoke) {
    for (const PhaseResult& r : phases)
      if (r.ok != r.requests || r.errors != 0 || r.invalid != 0) {
        std::cerr << "bench_serve: smoke failed (" << r.ok << "/"
                  << r.requests << " ok)\n";
        return 1;
      }
  }
  return 0;
}
