// Experiments E7 (Theorems 3 & 8 universal lower bounds) and E8
// (Theorem 9 weighted-APSP hard family).
//
// E7a: run the fast broadcast on dumbbells with all messages on one side;
//      meter the bits crossing the bridge cut and compare measured rounds
//      to the information-theoretic floor k/(2*lambda) (every algorithm,
//      even topology-aware, obeys it).
// E7b: Theorem 8's Omega(n/lambda) floor for learning all IDs.
// E8:  Theorem 9's family: v1 must learn (n-2) log2(kmax) bits through
//      lambda edges -> Omega(n/(lambda log alpha)) rounds for any
//      alpha-approximate weighted APSP.

#include "bench_common.hpp"

#include <cmath>

#include "core/fast_broadcast.hpp"
#include "lb/bit_meter.hpp"
#include "lb/hard_families.hpp"

namespace fc::bench {
namespace {

void experiment_e7a() {
  banner("E7a / Theorem 3",
         "broadcast k messages that all start in the left clique of a "
         "dumbbell: measured rounds >= information floor k/(2 lambda); the "
         "meter confirms >= k messages crossed the bridge cut.");
  Table table({"lambda", "k", "rounds", "floor k/2l", "msgs crossed cut",
               "k", "rounds/floor"});
  Rng rng(61);
  const NodeId s = 48;
  for (std::uint32_t bridges : {2u, 4u, 8u, 16u}) {
    const Graph g = gen::dumbbell(s, bridges);
    const std::uint64_t k = 8ull * g.node_count();
    std::vector<algo::PlacedMessage> msgs;
    for (std::uint64_t i = 0; i < k; ++i)
      msgs.push_back({static_cast<NodeId>(rng.below(s)), i, rng()});
    const auto report = core::run_fast_broadcast_oblivious(g, msgs);
    // Traffic metering needs arc counts; redo a textbook run for the meter.
    const auto bfs = algo::run_bfs(g, 0);
    congest::Network net(g);
    algo::PipelineBroadcast alg(g, bfs.tree, msgs);
    const auto run = net.run(alg);
    std::vector<bool> side(g.node_count(), false);
    for (NodeId v = 0; v < s; ++v) side[v] = true;
    const auto traffic = lb::measure_cut_traffic(g, run.arc_sends, side, 64);
    const auto floor = lb::broadcast_round_floor(k, 64, bridges, 64);
    table.add_row(
        {Table::num(std::size_t{bridges}), Table::num(std::size_t{k}),
         Table::num(std::size_t{report.total_rounds}),
         Table::num(floor.round_floor, 1),
         Table::num(std::size_t{traffic.messages_crossed}),
         Table::num(std::size_t{k}),
         Table::num(report.total_rounds / floor.round_floor, 2)});
  }
  table.print(std::cout);
}

void experiment_e7b() {
  banner("E7b / Theorem 8",
         "learning the full ID list needs Omega(n/lambda) rounds on every "
         "graph; the floor for random ids of ~c log n bits.");
  Table table({"n", "lambda", "floor rounds", "n/lambda"});
  for (NodeId n : {256u, 1024u, 4096u}) {
    for (std::uint32_t lambda : {8u, 64u}) {
      const auto floor = lb::id_learning_round_floor(n, lambda, 64, 64);
      table.add_row({Table::num(std::size_t{n}),
                     Table::num(std::size_t{lambda}),
                     Table::num(floor.round_floor, 1),
                     Table::num(static_cast<double>(n) / lambda, 1)});
    }
  }
  table.print(std::cout);
}

void experiment_e8() {
  banner("E8 / Theorem 9",
         "the weighted-APSP hard family: v1's information floor "
         "(n-2) log2(kmax) / (64 lambda) rounds, scaling as n/(l log a).");
  Table table({"n", "lambda", "alpha", "kmax", "bits at v1", "floor rounds",
               "n/(l log2 a)"});
  for (NodeId n : {64u, 128u, 256u}) {
    for (double alpha : {2.0, 8.0}) {
      const std::uint32_t lambda = 8;
      const auto inst =
          lb::build_theorem9_instance(n, lambda, alpha, 1'000'000'000, 3);
      table.add_row(
          {Table::num(std::size_t{n}), Table::num(std::size_t{lambda}),
           Table::num(alpha, 0), Table::num(std::size_t{inst.kmax}),
           Table::num(inst.floor.bits_required, 0),
           Table::num(inst.floor.round_floor, 2),
           Table::num(n / (lambda * std::log2(alpha)), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "(floor shrinks as alpha grows: coarser approximation needs "
               "fewer bits, exactly Theorem 9's 1/log(alpha) dependence)\n";
}

// --graph=<spec> override: the universal information-theoretic floors
// (Theorems 3 & 8) evaluated on caller-chosen scenarios, against the
// measured rounds of the oblivious broadcast; --k=<count> (default 4n).
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      const Options& opts) {
  banner("E7 on custom scenarios",
         "k-broadcast floor k/(2 lambda) and the Theorem 8 id-learning "
         "floor on --graph=<spec> workloads vs measured oblivious rounds.");
  Table table({"graph", "n", "lambda", "k", "rounds", "floor k/2l",
               "rounds/floor", "id floor (Thm 8)"});
  Rng rng(61);
  for (const auto& [name, g] : graphs) {
    const auto lambda = spec_lambda(opts, g);
    if (lambda.value == 0) {
      std::cout << "skipping " << name << ": disconnected (lambda = 0)\n";
      continue;
    }
    const std::uint64_t k =
        opts.has("k") ? static_cast<std::uint64_t>(opts.get_int("k", 0))
                      : 4ull * g.node_count();
    const auto msgs = random_messages(g, k, rng);
    const auto report = core::run_fast_broadcast_oblivious(g, msgs);
    const auto floor = lb::broadcast_round_floor(k, 64, lambda.value, 64);
    const auto id_floor =
        lb::id_learning_round_floor(g.node_count(), lambda.value, 64, 64);
    table.add_row({name, Table::num(std::size_t{g.node_count()}),
                   lambda_str(lambda), Table::num(std::size_t{k}),
                   Table::num(std::size_t{report.total_rounds}),
                   Table::num(floor.round_floor, 1),
                   Table::num(report.total_rounds / floor.round_floor, 2),
                   Table::num(id_floor.round_floor, 1)});
    if (!report.complete)
      std::cout << "WARNING: incomplete broadcast on " << name << "\n";
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_lower_bounds", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_e7a();
  fc::bench::experiment_e7b();
  fc::bench::experiment_e8();
  return 0;
}
