// Batch k-source SSSP (pipelined Bellman-Ford, apps/batch_sssp): one engine
// execution answers k queries in O(depth + k)-style pipelined rounds. Every
// row prints the batch run NEXT TO the k-independent-runs baseline (sums of
// apps::distributed_sssp costs), so the pipelining saving is the measured
// quantity: the "round x" column is baseline rounds / batch rounds. Distance
// vectors are checked per query against serial Dijkstra.

#include "bench_common.hpp"

#include "apps/batch_sssp.hpp"
#include "apps/sssp.hpp"

namespace fc::bench {
namespace {

Table batch_table() {
  return Table({"graph", "n", "m", "k", "rounds", "messages", "max edge",
                "k-run rounds", "k-run msgs", "round x", "dijkstra"});
}

void batch_row(Table& table, const std::string& name, const WeightedGraph& g,
               std::uint64_t k) {
  const auto sources = apps::default_sources(g.graph(), k);
  const auto batch = apps::batch_sssp(g, sources);
  // Baseline: the same k queries as k separate engine executions.
  std::uint64_t base_rounds = 0, base_messages = 0;
  bool match = batch.finished;
  for (std::uint32_t s = 0; s < sources.size(); ++s) {
    const auto single = apps::distributed_sssp(g, sources[s]);
    base_rounds += single.rounds;
    base_messages += single.messages;
    match = match && batch.dist[s] == dijkstra(g, sources[s]);
  }
  const double speedup =
      batch.rounds == 0 ? 0.0
                        : static_cast<double>(base_rounds) /
                              static_cast<double>(batch.rounds);
  table.add_row({name, Table::num(std::size_t{g.graph().node_count()}),
                 Table::num(std::size_t{g.graph().edge_count()}),
                 Table::num(std::size_t{k}),
                 Table::num(std::size_t{batch.rounds}),
                 Table::num(std::size_t{batch.messages}),
                 Table::num(std::size_t{batch.max_edge_congestion(g.graph())}),
                 Table::num(std::size_t{base_rounds}),
                 Table::num(std::size_t{base_messages}),
                 Table::num(speedup, 1) + "x",
                 match ? "match" : "MISMATCH"});
}

void experiment_b1() {
  banner("B1 / pipelining versus query count",
         "one batched execution takes ~depth + k rounds where k independent "
         "runs pay k * depth: the round ratio grows with k.");
  Table table = batch_table();
  Rng rng(81);
  const WeightedGraph g = gen::with_hashed_weights(
      gen::random_regular(512, 8, rng), 1, 100, 81);
  for (const std::uint64_t k : {1u, 4u, 16u, 64u})
    batch_row(table, "random_regular:n=512,d=8", g, k);
  table.print(std::cout);
}

void experiment_b2() {
  banner("B2 / pipelining across connectivity regimes",
         "k=16 sources: deep bottleneck families amortize their depth over "
         "the batch; expanders are round-cheap either way but save the "
         "per-run startup.");
  Table table = batch_table();
  const std::uint64_t k = 16;
  batch_row(table, "thick_path:groups=64,width=4",
            gen::with_hashed_weights(gen::thick_path(64, 4), 1, 100, 9), k);
  batch_row(table, "torus:rows=16,cols=16",
            gen::with_hashed_weights(gen::torus(16, 16), 1, 100, 9), k);
  batch_row(table, "margulis:side=16",
            gen::with_hashed_weights(gen::margulis_expander(16), 1, 100, 9),
            k);
  batch_row(table, "dumbbell:s=64,bridges=2",
            gen::with_hashed_weights(gen::dumbbell(64, 2), 1, 100, 9), k);
  table.print(std::cout);
}

// --graph=<spec> override: batch SSSP on caller-chosen WEIGHTED scenarios.
// The query count comes from --sources (default 8), or from a spec-level
// sources= parameter when --sources is absent.
void experiment_specs(const std::vector<NamedWeightedGraph>& graphs,
                      const Options& opts) {
  banner("Batch SSSP on custom scenarios",
         "pipelined k-source Bellman-Ford on --graph=<spec> workloads "
         "versus k independent runs; per-query distances checked against "
         "serial Dijkstra.");
  Table table = batch_table();
  for (const auto& [name, wg] : graphs) {
    std::uint64_t k = static_cast<std::uint64_t>(opts.get_int("sources", 0));
    if (k == 0)
      k = scenario::GraphSpec::parse(name).get_uint("sources", 8);
    if (k > wg.graph().node_count()) {
      std::cout << "skipping " << name << ": --sources=" << k
                << " exceeds n=" << wg.graph().node_count() << "\n";
      continue;
    }
    batch_row(table, name, wg, k);
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::weighted_spec_mode(
          "bench_batch_sssp", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_b1();
  fc::bench::experiment_b2();
  return 0;
}
