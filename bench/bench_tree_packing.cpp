// Experiment E3 (§3.1 tree packings) + E12 (Theorem 13 / GK13 floor).
//
// E3a: edge-disjoint packings on well-connected graphs: Omega(lambda/log n)
//      trees of depth O((n log n)/delta), congestion 1.
// E3b: low-congestion packings: >= lambda trees, each edge in O(log n).
// E12: on the thick-path bottleneck family every spanning tree must run the
//      length of the path, so max tree diameter >= ~n/lambda — matching the
//      paper's existential lower bound shape.

#include "bench_common.hpp"

#include <cmath>

#include "core/tree_packing.hpp"
#include "lb/hard_families.hpp"

namespace fc::bench {
namespace {

void experiment_e3a() {
  banner("E3a / edge-disjoint tree packing",
         "random regular, C=2: trees = lambda/(C ln n), depth = "
         "O((n log n)/delta), every edge in at most one tree.");
  Table table({"n", "lambda", "trees", "l/(C ln n)", "max depth",
               "(n ln n)/d", "max edge load"});
  Rng seed_rng(21);
  const NodeId n = 512;
  for (std::uint32_t d : {16u, 32u, 64u, 128u}) {
    Rng rng = seed_rng.fork(d);
    const Graph g = gen::random_regular(n, d, rng);
    core::DecompositionOptions opts;
    opts.C = 2.0;
    const auto packing = core::build_edge_disjoint_packing(g, d, opts);
    table.add_row(
        {Table::num(std::size_t{n}), Table::num(std::size_t{d}),
         Table::num(packing.tree_count()),
         Table::num(d / (2.0 * std::log(static_cast<double>(n))), 1),
         Table::num(std::size_t{packing.max_tree_depth()}),
         Table::num(n * std::log(static_cast<double>(n)) / d, 1),
         Table::num(std::size_t{packing.max_edge_load()})});
  }
  table.print(std::cout);
}

void experiment_e3b() {
  banner("E3b / low-congestion packing",
         ">= lambda spanning trees with per-edge load O(log n) via "
         "independent recolourings.");
  Table table({"n", "lambda", "target", "trees", "repetitions",
               "max edge load", "log2 n"});
  Rng seed_rng(23);
  for (std::uint32_t d : {24u, 48u}) {
    const NodeId n = 384;
    Rng rng = seed_rng.fork(d);
    const Graph g = gen::random_regular(n, d, rng);
    core::DecompositionOptions opts;
    opts.C = 2.0;
    const auto packing = core::build_low_congestion_packing(g, d, d, opts);
    table.add_row({Table::num(std::size_t{n}), Table::num(std::size_t{d}),
                   Table::num(std::size_t{d}), Table::num(packing.tree_count()),
                   Table::num(std::size_t{packing.repetitions}),
                   Table::num(std::size_t{packing.max_edge_load()}),
                   Table::num(std::log2(static_cast<double>(n)), 1)});
  }
  table.print(std::cout);
}

void experiment_e12() {
  banner("E12 / Theorem 13 shape",
         "thick path (groups x width): any spanning tree runs the whole "
         "path, so tree diameter >= groups-1 ~ n/lambda; our packing's "
         "depth stays within the O((n log n)/delta) budget.");
  Table table({"groups", "width", "n", "lambda", "min tree depth",
               "floor n/l", "max depth", "(n ln n)/d"});
  for (NodeId groups : {8u, 16u, 32u}) {
    const NodeId width = 6;
    const Graph g = gen::thick_path(groups, width);
    core::DecompositionOptions opts;
    opts.C = 2.0;
    const auto packing = core::build_edge_disjoint_packing(g, width, opts);
    std::uint32_t min_depth = kUnreached;
    for (const auto& t : packing.trees)
      min_depth = std::min(min_depth, t.depth);
    const NodeId n = g.node_count();
    table.add_row(
        {Table::num(std::size_t{groups}), Table::num(std::size_t{width}),
         Table::num(std::size_t{n}), Table::num(std::size_t{width}),
         Table::num(std::size_t{min_depth}),
         Table::num(lb::tree_packing_diameter_floor(n, width), 1),
         Table::num(std::size_t{packing.max_tree_depth()}),
         Table::num(n * std::log(static_cast<double>(n)) / min_degree(g), 1)});
  }
  table.print(std::cout);
}

// --graph=<spec> override: edge-disjoint packings (E3a) on caller-chosen
// scenarios.
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      const Options& opts) {
  banner("E3 on custom scenarios",
         "edge-disjoint tree packing on --graph=<spec> workloads: trees vs "
         "lambda/(C ln n), depth vs (n log n)/delta, congestion 1.");
  Table table({"graph", "n", "lambda", "trees", "l/(C ln n)", "max depth",
               "(n ln n)/d", "max edge load"});
  for (const auto& [name, g] : graphs) {
    const auto lambda = spec_lambda(opts, g);
    if (lambda.value == 0) {
      std::cout << "skipping " << name << ": disconnected (lambda = 0)\n";
      continue;
    }
    core::DecompositionOptions dopts;
    dopts.C = 2.0;
    const auto packing =
        core::build_edge_disjoint_packing(g, lambda.value, dopts);
    const double n = g.node_count();
    table.add_row(
        {name, Table::num(std::size_t{g.node_count()}), lambda_str(lambda),
         Table::num(packing.tree_count()),
         Table::num(lambda.value / (2.0 * std::log(n)), 1),
         Table::num(std::size_t{packing.max_tree_depth()}),
         Table::num(n * std::log(n) / std::max(1u, min_degree(g)), 1),
         Table::num(std::size_t{packing.max_edge_load()})});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_tree_packing", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_e3a();
  fc::bench::experiment_e3b();
  fc::bench::experiment_e12();
  return 0;
}
