#pragma once
// Shared helpers for the experiment harnesses (bench_*).
//
// Each bench binary reproduces one experiment row of DESIGN.md's index:
// it generates the workloads, runs the paper's algorithm and the baseline,
// and prints the table the paper's theorem corresponds to. Absolute round
// counts depend on implementation constants; the *shape* (who wins, how
// quantities scale) is the reproduction target, per EXPERIMENTS.md.

#include <iostream>
#include <string>
#include <vector>

#include "algo/pipeline_broadcast.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "scenario/spec.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace fc::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// A workload graph with its display name (the canonical spec string).
struct NamedGraph {
  std::string name;
  Graph graph;
};

/// Graph-spec overrides from the harness command line: every --graph=<spec>
/// option, built through the scenario registry. Empty when none were passed
/// — the harness then runs its built-in experiment grid.
inline std::vector<NamedGraph> spec_graphs(int argc, char** argv) {
  const Options opts(argc, argv);
  std::vector<NamedGraph> out;
  for (const auto& text : opts.get_all("graph")) {
    const auto spec = scenario::GraphSpec::parse(text);
    out.push_back({spec.to_string(), scenario::Registry::instance().build(spec)});
  }
  return out;
}

inline std::vector<algo::PlacedMessage> random_messages(const Graph& g,
                                                        std::uint64_t k,
                                                        Rng& rng) {
  std::vector<algo::PlacedMessage> msgs;
  msgs.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i)
    msgs.push_back({static_cast<NodeId>(rng.below(g.node_count())), i, rng()});
  return msgs;
}

}  // namespace fc::bench
