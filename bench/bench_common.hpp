#pragma once
// Shared helpers for the experiment harnesses (bench_*).
//
// Each bench binary reproduces one experiment row of DESIGN.md's index:
// it generates the workloads, runs the paper's algorithm and the baseline,
// and prints the table the paper's theorem corresponds to. Absolute round
// counts depend on implementation constants; the *shape* (who wins, how
// quantities scale) is the reproduction target, per EXPERIMENTS.md.
//
// Spec overrides — every harness accepts the same flags:
//   --graph=<spec>   repeatable; run the harness's spec-mode experiment on
//                    these scenario-registry graphs instead of the built-in
//                    grid. Weighted harnesses take weights=lo..hi specs.
//   --cache=<dir>    corpus directory: graphs are load_or_generate'd
//                    (binary CSR + manifest) instead of regenerated.
//   --lambda=<l>     skip λ measurement and use this value (the generators
//                    usually guarantee λ by construction).
// Helpers here only *read* flags; unknown-flag policing stays with the
// binaries that opt into it. All helpers are plain functions without
// shared state — safe to call from any single thread, not synchronized.

#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "algo/pipeline_broadcast.hpp"
#include "graph/generators.hpp"
#include "graph/mincut.hpp"
#include "graph/properties.hpp"
#include "scenario/graph_io.hpp"
#include "scenario/spec.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace fc::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// A workload graph with its display name (the canonical spec string).
struct NamedGraph {
  std::string name;
  Graph graph;
};

/// Weighted counterpart (weights from `weights=lo..hi`, else unit).
struct NamedWeightedGraph {
  std::string name;
  WeightedGraph graph;
};

/// Graph-spec overrides from the harness command line: every --graph=<spec>
/// option, built through the scenario registry — via the --cache corpus
/// when given. Empty when none were passed — the harness then runs its
/// built-in experiment grid.
inline std::vector<NamedGraph> spec_graphs(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::string cache = opts.get("cache", "");
  std::vector<NamedGraph> out;
  for (const auto& text : opts.get_all("graph")) {
    const auto spec = scenario::GraphSpec::parse(text);
    Graph g = cache.empty()
                  ? scenario::Registry::instance().build(spec)
                  : scenario::load_or_generate(spec, cache);
    out.push_back({spec.to_string(), std::move(g)});
  }
  return out;
}

/// Weighted spec overrides for the weighted harnesses: same contract as
/// spec_graphs, plus hash-derived `weights=lo..hi` weights (unit weights
/// when the parameter is absent).
inline std::vector<NamedWeightedGraph> spec_weighted_graphs(int argc,
                                                            char** argv) {
  const Options opts(argc, argv);
  const std::string cache = opts.get("cache", "");
  std::vector<NamedWeightedGraph> out;
  for (const auto& text : opts.get_all("graph")) {
    const auto spec = scenario::GraphSpec::parse(text);
    WeightedGraph g =
        cache.empty() ? scenario::Registry::instance().build_weighted(spec)
                      : scenario::load_or_generate_weighted(spec, cache);
    out.push_back({spec.to_string(), std::move(g)});
  }
  return out;
}

/// The shared spec-mode front door, hoisted from the (formerly verbatim)
/// harness mains. When the command line carries --graph=<spec> overrides,
/// build them and hand them to `experiments`, returning the process exit
/// code: 0 on success, 2 after printing "<harness>: <error>" for a spec,
/// build, or experiment failure. Returns std::nullopt when no specs were
/// given — the caller then runs its built-in paper grid:
///
///   int main(int argc, char** argv) {
///     if (const auto rc = fc::bench::spec_mode("bench_x", argc, argv,
///             [&](const auto& graphs) { experiment_specs(graphs, ...); }))
///       return *rc;
///     experiment_e1(); ...
///   }
inline std::optional<int> spec_mode(
    const char* harness, int argc, char** argv,
    const std::function<void(const std::vector<NamedGraph>&)>& experiments) {
  try {
    const auto custom = spec_graphs(argc, argv);
    if (custom.empty()) return std::nullopt;
    experiments(custom);
    return 0;
  } catch (const std::exception& err) {
    std::cerr << harness << ": " << err.what() << "\n";
    return 2;
  }
}

/// Weighted twin of spec_mode for the harnesses whose spec experiments take
/// `weights=lo..hi` workloads (bench_apsp_weighted, bench_mst, bench_sssp,
/// bench_batch_sssp).
inline std::optional<int> weighted_spec_mode(
    const char* harness, int argc, char** argv,
    const std::function<void(const std::vector<NamedWeightedGraph>&)>&
        experiments) {
  try {
    const auto custom = spec_weighted_graphs(argc, argv);
    if (custom.empty()) return std::nullopt;
    experiments(custom);
    return 0;
  } catch (const std::exception& err) {
    std::cerr << harness << ": " << err.what() << "\n";
    return 2;
  }
}

/// λ for a spec-mode workload: --lambda=<l> when given, otherwise the
/// shared fc::estimate_edge_connectivity policy (exact for n <= 600, a
/// Karger upper-bound estimate above it).
inline ConnectivityEstimate spec_lambda(const Options& opts, const Graph& g) {
  if (opts.has("lambda"))
    return {static_cast<std::uint32_t>(opts.get_int("lambda", 1)), true};
  return estimate_edge_connectivity(g, 0x6c);
}

/// Table rendering of the estimate: exact λ as "l", upper bounds as "~l".
inline std::string lambda_str(const ConnectivityEstimate& est) {
  return (est.exact ? "" : "~") + std::to_string(est.value);
}

inline std::vector<algo::PlacedMessage> random_messages(const Graph& g,
                                                        std::uint64_t k,
                                                        Rng& rng) {
  std::vector<algo::PlacedMessage> msgs;
  msgs.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i)
    msgs.push_back({static_cast<NodeId>(rng.below(g.node_count())), i, rng()});
  return msgs;
}

// ----------------------------------------------------------------- JSON
// Machine-readable bench artifacts (BENCH_<harness>.json): the CI runs
// `bench_engine --quick` (and future harnesses) every push, so the perf
// trajectory is recorded PR-over-PR instead of living only in table
// screenshots. The format is deliberately tiny: one top-level object with
// harness metadata plus a flat "rows" array; every row value is a string
// or a finite number. Emission order == insertion order, so diffs are
// stable run-to-run.

/// One JSON object rendered field-by-field in insertion order.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, quote(value));
    return *this;
  }
  JsonObject& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonObject& add(const std::string& key, double value) {
    std::ostringstream out;
    out << value;
    fields_.emplace_back(key, out.str());
    return *this;
  }
  JsonObject& add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonObject& add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += quote(fields_[i].first) + ": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> literal
};

/// The whole artifact: metadata + rows, written as BENCH_<harness>.json.
class JsonReport {
 public:
  explicit JsonReport(std::string harness) : harness_(std::move(harness)) {}

  /// Top-level metadata field (e.g. mode="quick").
  template <typename V>
  JsonReport& meta(const std::string& key, V value) {
    meta_.add(key, value);
    return *this;
  }
  /// Append a row; fill the returned object in place. References stay
  /// valid across later row() calls (deque storage never reallocates).
  JsonObject& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string str() const {
    std::string out = "{\"harness\": \"" + harness_ + "\"";
    const std::string meta = meta_.str();
    if (meta != "{}") out += ", \"meta\": " + meta;
    out += ", \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ", ";
      out += rows_[i].str();
    }
    return out + "]}\n";
  }

  /// Write BENCH_<harness>.json into `dir` (default: the working directory,
  /// i.e. the build tree under CI). Returns the path written.
  std::string write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + harness_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw std::runtime_error("bench: cannot write " + path);
    out << str();
    return path;
  }

 private:
  std::string harness_;
  JsonObject meta_;
  std::deque<JsonObject> rows_;  // stable references for row()
};

/// The standard run-metadata header every harness should stamp on its
/// JsonReport: the engine pool size the measurements ran on, the build
/// type, and the telemetry mode (measurements are taken with "off" unless
/// the harness measures telemetry itself). `spec` names a single-workload
/// harness's graph; pass "" when the harness runs a grid (the rows carry
/// per-workload specs).
inline JsonReport& add_run_metadata(JsonReport& report,
                                    const std::string& telemetry_mode = "off",
                                    const std::string& spec = "") {
  report.meta("engine_pool", std::uint64_t{ThreadPool::global().size()});
#ifdef NDEBUG
  report.meta("build", "release");
#else
  report.meta("build", "debug");
#endif
  report.meta("telemetry", telemetry_mode);
  if (!spec.empty()) report.meta("spec", spec);
  return report;
}

}  // namespace fc::bench
