// Distributed SSSP (synchronous Bellman–Ford, apps/sssp): rounds track the
// source's HOP eccentricity (not the weighted distances), messages pay for
// re-announcements on every improvement, and the distance vector matches
// the serial Dijkstra reference entry for entry.

#include "bench_common.hpp"

#include "apps/sssp.hpp"

namespace fc::bench {
namespace {

Table sssp_table() {
  return Table({"graph", "n", "m", "rounds", "hop ecc", "messages",
                "max edge", "max dist", "dijkstra"});
}

void sssp_row(Table& table, const std::string& name, const WeightedGraph& g,
              NodeId source) {
  const auto rep = apps::distributed_sssp(g, source);
  const bool match = rep.dist == dijkstra(g, source);
  // Hop eccentricity of the source inside its component: the round floor.
  const auto hops = bfs_distances(g.graph(), source);
  std::uint32_t ecc = 0;
  for (const auto h : hops)
    if (h != kUnreached) ecc = std::max(ecc, h);
  table.add_row({name, Table::num(std::size_t{g.graph().node_count()}),
                 Table::num(std::size_t{g.graph().edge_count()}),
                 Table::num(std::size_t{rep.rounds}),
                 Table::num(std::size_t{ecc}),
                 Table::num(std::size_t{rep.messages}),
                 Table::num(std::size_t{rep.max_edge_congestion(g.graph())}),
                 Table::num(static_cast<std::size_t>(rep.max_dist)),
                 match ? "match" : "MISMATCH"});
}

void experiment_s1() {
  banner("S1 / Bellman-Ford round scaling",
         "rounds ~ hop eccentricity of the source: diameter-bound families "
         "pay rounds, dense families pay messages.");
  Table table = sssp_table();
  Rng seed_rng(71);
  for (const NodeId n : {64u, 256u, 1024u}) {
    Rng rng = seed_rng.fork(n);
    sssp_row(table, "random_regular d=8 n=" + std::to_string(n),
             gen::with_hashed_weights(gen::random_regular(n, 8, rng), 1, 1000,
                                      n),
             0);
  }
  sssp_row(table, "thick_path:groups=64,width=4",
           gen::with_hashed_weights(gen::thick_path(64, 4), 1, 100, 9), 0);
  sssp_row(table, "torus:rows=16,cols=16",
           gen::with_hashed_weights(gen::torus(16, 16), 1, 100, 9), 0);
  table.print(std::cout);
}

void experiment_s1_weight_spread() {
  banner("S1b / weight-spread sensitivity",
         "wider weight ranges force more re-relaxations: rounds stay at the "
         "hop bound, messages grow with corrections.");
  Table table = sssp_table();
  Rng rng(73);
  const Graph base = gen::random_regular(512, 6, rng);
  for (const Weight hi : {Weight{1}, Weight{16}, Weight{4096}}) {
    Graph copy = base;  // with_hashed_weights consumes its graph
    sssp_row(table, "random_regular n=512 weights=1.." + std::to_string(hi),
             gen::with_hashed_weights(std::move(copy), 1, hi, 5), 0);
  }
  table.print(std::cout);
}

// --graph=<spec> override: distributed SSSP from --root (default 0) on
// caller-chosen WEIGHTED scenarios. Disconnected specs are fine — nodes
// outside the source's component stay unreached, exactly like Dijkstra.
void experiment_specs(const std::vector<NamedWeightedGraph>& graphs,
                      const Options& opts) {
  const auto source = static_cast<NodeId>(opts.get_int("root", 0));
  banner("SSSP on custom scenarios",
         "Bellman-Ford from node " + std::to_string(source) +
             " on --graph=<spec> workloads; distances checked against "
             "serial Dijkstra.");
  Table table = sssp_table();
  for (const auto& [name, wg] : graphs) {
    if (source >= wg.graph().node_count()) {
      std::cout << "skipping " << name << ": --root=" << source
                << " out of range\n";
      continue;
    }
    sssp_row(table, name, wg, source);
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::weighted_spec_mode(
          "bench_sssp", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_s1();
  fc::bench::experiment_s1_weight_spread();
  return 0;
}
