// Experiment E4 (Theorem 4): (3,2)-approximate unweighted APSP in
// Õ(n/lambda) rounds. We report rounds by phase, the scaling against
// n/lambda, and the measured approximation quality against exact APSP
// (the guarantee d <= d' <= 3d + 2 must hold for every pair).

#include "bench_common.hpp"

#include "apps/cluster_apsp.hpp"
#include "apps/exact_apsp.hpp"

namespace fc::bench {
namespace {

void experiment_e4() {
  banner("E4 / Theorem 4",
         "(3,2)-approx unweighted APSP: rounds by phase vs n/lambda; "
         "quality = worst and mean ratio d'/d over all pairs (bound: 3+2/d).");
  Table table({"n", "lambda", "clusters", "rounds", "n/l", "rounds*l/n",
               "worst d'/d", "mean d'/d", "violations"});
  Rng seed_rng(31);
  for (NodeId n : {128u, 256u}) {
    for (std::uint32_t d : {16u, 32u, 64u}) {
      if (d >= n) continue;
      Rng rng = seed_rng.fork(mix64(n, d));
      const Graph g = gen::random_regular(n, d, rng);
      const auto report = apps::approximate_apsp_unweighted(g, d);
      const auto exact = apsp_exact(g);
      double worst = 0, sum = 0;
      std::size_t pairs = 0, violations = 0;
      for (NodeId u = 0; u < n; ++u)
        for (NodeId v = u + 1; v < n; ++v) {
          const double ratio = static_cast<double>(report.estimate(u, v)) /
                               static_cast<double>(exact[u][v]);
          worst = std::max(worst, ratio);
          sum += ratio;
          ++pairs;
          if (report.estimate(u, v) < exact[u][v] ||
              report.estimate(u, v) > 3 * exact[u][v] + 2)
            ++violations;
        }
      table.add_row(
          {Table::num(std::size_t{n}), Table::num(std::size_t{d}),
           Table::num(std::size_t{report.clustering.cluster_count()}),
           Table::num(std::size_t{report.total_rounds}),
           Table::num(static_cast<double>(n) / d, 1),
           Table::num(static_cast<double>(report.total_rounds) * d / n, 1),
           Table::num(worst, 2), Table::num(sum / static_cast<double>(pairs), 2),
           Table::num(violations)});
    }
  }
  table.print(std::cout);
}

void experiment_e4_phases() {
  banner("E4b / Theorem 4 phase breakdown",
         "Where the rounds go: clustering, Gc gather, PRT12 simulation "
         "(3 rounds per virtual round), row downcast, s(v) broadcast.");
  Rng rng(37);
  const NodeId n = 256;
  const std::uint32_t d = 32;
  const Graph g = gen::random_regular(n, d, rng);
  const auto report = apps::approximate_apsp_unweighted(g, d);
  Table table({"phase", "rounds"});
  table.add_row({"clustering", Table::num(std::size_t{report.rounds_clustering})});
  table.add_row({"Gc gather (Lemma 6)", Table::num(std::size_t{report.rounds_gather})});
  table.add_row({"PRT12 on Gc", Table::num(std::size_t{report.rounds_prt12})});
  table.add_row({"row downcast", Table::num(std::size_t{report.rounds_row_downcast})});
  table.add_row({"broadcast s(v) (Thm 1)",
                 Table::num(std::size_t{report.rounds_broadcast_s})});
  table.add_row({"TOTAL", Table::num(std::size_t{report.total_rounds})});
  table.print(std::cout);
}

void experiment_e4_vs_exact() {
  banner("E4c / approximate vs exact APSP",
         "the Theta(n)-round exact baseline (delayed-BFS, PRT12/HW12 "
         "style, run at message level) against the Theorem 4 pipeline: the "
         "approximation wins once lambda >> log n, which is the paper's "
         "whole point (exact APSP cannot be sublinear, Theorem 4 can).");
  Table table({"n", "lambda", "exact rounds", "approx rounds", "speedup",
               "collision-free"});
  Rng seed_rng(47);
  for (NodeId n : {128u, 256u}) {
    for (std::uint32_t d : {32u, 64u}) {
      Rng rng = seed_rng.fork(mix64(n, d));
      const Graph g = gen::random_regular(n, d, rng);
      const auto exact = apps::exact_apsp_distributed(g);
      const auto approx = apps::approximate_apsp_unweighted(g, d);
      table.add_row(
          {Table::num(std::size_t{n}), Table::num(std::size_t{d}),
           Table::num(std::size_t{exact.total_rounds}),
           Table::num(std::size_t{approx.total_rounds}),
           Table::num(static_cast<double>(exact.total_rounds) /
                          static_cast<double>(approx.total_rounds),
                      2),
           exact.max_queue <= 1 ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
}

// --graph=<spec> override: Theorem 4 on caller-chosen scenarios. The
// (3,2) quality check runs the O(n^2)-pair comparison only while n <= 512;
// larger workloads report rounds and scaling alone.
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      const Options& opts) {
  banner("E4 on custom scenarios",
         "(3,2)-approx unweighted APSP on --graph=<spec> workloads; "
         "quality columns need n <= 512 (all-pairs exact comparison).");
  Table table({"graph", "n", "lambda", "clusters", "rounds", "rounds*l/n",
               "worst d'/d", "violations"});
  for (const auto& [name, g] : graphs) {
    const auto lambda = spec_lambda(opts, g);
    if (lambda.value == 0 || !is_connected(g)) {
      std::cout << "skipping " << name
                << ": APSP needs a connected graph (lambda > 0)\n";
      continue;
    }
    const auto report = apps::approximate_apsp_unweighted(g, lambda.value);
    std::string worst = "-", violations = "-";
    if (g.node_count() <= 512) {
      const auto exact = apsp_exact(g);
      double w = 0;
      std::size_t bad = 0;
      for (NodeId u = 0; u < g.node_count(); ++u)
        for (NodeId v = u + 1; v < g.node_count(); ++v) {
          const auto est = report.estimate(u, v);
          w = std::max(w, static_cast<double>(est) /
                              static_cast<double>(exact[u][v]));
          if (est < exact[u][v] || est > 3 * exact[u][v] + 2) ++bad;
        }
      worst = Table::num(w, 2);
      violations = Table::num(bad);
    }
    table.add_row(
        {name, Table::num(std::size_t{g.node_count()}), lambda_str(lambda),
         Table::num(std::size_t{report.clustering.cluster_count()}),
         Table::num(std::size_t{report.total_rounds}),
         Table::num(static_cast<double>(report.total_rounds) * lambda.value /
                        g.node_count(),
                    1),
         worst, violations});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_apsp_unweighted", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_e4();
  fc::bench::experiment_e4_phases();
  fc::bench::experiment_e4_vs_exact();
  return 0;
}
