// Experiment N1: round-engine throughput, dense sweep vs event-driven
// (sparse) activation.
//
// The engine promises O(active nodes + messages) work per round. This
// harness quantifies what that buys across the three activation regimes:
//
//   * deep path    — BFS frontier of O(1) nodes for n rounds: the dense
//                    sweep pays O(n) no-op handler calls per round (O(n^2)
//                    total), the sparse engine pays O(1) per round. The
//                    headline regime: speedups in the 100-1000x range.
//   * expander     — few rounds, nearly everything active every round
//                    (batch-bfs keeps per-node backlogs hot): sparse must
//                    NOT regress here; activation bookkeeping is the only
//                    delta.
//   * star         — one hot hub, n leaves active for exactly one round.
//   * messages>>n  — batch-bfs with k=256 sources on the expander: every
//                    round delivers far more messages than there are
//                    nodes, so delivery stamping (not handler dispatch)
//                    is the bottleneck. The regime the parallel stamp
//                    pass exists for; CI asserts its row stays identical.
//
// Both engines must produce bit-identical results (rounds, messages,
// per-arc sends) — the harness checks and prints it. `--quick` shrinks n
// for the CI smoke run; both modes emit BENCH_engine.json via the shared
// bench_common JSON emitter so the perf trajectory is recorded PR-over-PR.
//
// Experiment N2 (same binary, built-in grid only): telemetry overhead —
// off vs rounds vs full recording on the deep-path and expander regimes.
// CI guards "rounds" mode at <= 5% overhead on deep path, the contract
// that makes the counter series safe to leave on (docs/OBSERVABILITY.md).
//
// Experiment N3 (built-in grid only): the delivery stamp pass itself —
// serial loop (parallel_stamp_threshold = SIZE_MAX) vs the per-worker
// parallel pass (threshold 0) on the messages>>n workload, sparse engine
// both times. Results must be bit-identical; the speedup is the tentpole
// measurement for the parallel stamp pass.
//
// Experiment N4 (built-in grid only): composite edge-disjoint execution —
// run_edge_disjoint in legacy kSequential mode (one Network per instance)
// vs kInterleaved (all instances in ONE engine run on the block-diagonal
// union graph). Composite and per-instance costs must agree exactly.
//
// Flags: --quick, --graph=<spec> (repeatable; replaces the built-in
// regimes), --sources=<k> (batch-bfs backlog width, default 64).

#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>

#include "algo/bfs.hpp"
#include "algo/leader_election.hpp"
#include "apps/batch_sssp.hpp"
#include "congest/network.hpp"
#include "congest/runner.hpp"
#include "graph/partition.hpp"

namespace fc::bench {
namespace {

using AlgFactory =
    std::function<std::unique_ptr<congest::Algorithm>(const Graph&)>;

struct EngineRun {
  congest::RunResult result;
  double ms_per_run = 0.0;
  double rounds_per_sec = 0.0;
};

/// Run (fresh algorithm, fresh network, fresh telemetry recorder)
/// repeatedly until >= 0.2 s of engine time accumulates (50 reps cap), so
/// the short expander/star runs are timed above clock noise while the long
/// path runs cost one rep.
EngineRun run_engine(const Graph& g, const AlgFactory& make, bool force_dense,
                     congest::TelemetryMode tmode =
                         congest::TelemetryMode::kOff,
                     std::size_t stamp_threshold =
                         congest::RunOptions{}.parallel_stamp_threshold,
                     ThreadPool* pool = nullptr) {
  EngineRun out;
  congest::RunOptions opts;
  opts.force_dense = force_dense;
  opts.parallel_stamp_threshold = stamp_threshold;
  opts.pool = pool;
  double total_ms = 0.0;
  std::uint64_t reps = 0;
  while (reps < 50 && (reps == 0 || total_ms < 200.0)) {
    const auto alg = make(g);
    congest::Network net(g);
    congest::Telemetry telemetry(tmode);
    opts.telemetry = telemetry.enabled() ? &telemetry : nullptr;
    const auto t0 = std::chrono::steady_clock::now();
    auto res = net.run(*alg, opts);
    const auto t1 = std::chrono::steady_clock::now();
    total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.result = std::move(res);
    ++reps;
  }
  out.ms_per_run = total_ms / static_cast<double>(reps);
  out.rounds_per_sec = out.ms_per_run > 0.0
                           ? static_cast<double>(out.result.rounds) * 1000.0 /
                                 out.ms_per_run
                           : 0.0;
  return out;
}

struct Workload {
  std::string regime;
  std::string spec;
  std::string algo;
  AlgFactory make;
};

AlgFactory make_bfs() {
  return [](const Graph& g) -> std::unique_ptr<congest::Algorithm> {
    return std::make_unique<algo::DistributedBfs>(g, 0);
  };
}

AlgFactory make_leader() {
  return [](const Graph& g) -> std::unique_ptr<congest::Algorithm> {
    return std::make_unique<algo::LeaderElection>(g);
  };
}

AlgFactory make_batch_bfs(std::uint64_t sources) {
  return [sources](const Graph& g) -> std::unique_ptr<congest::Algorithm> {
    return std::make_unique<algo::BatchBfs>(
        g, apps::default_sources(g, std::min<std::uint64_t>(
                                        sources, g.node_count())));
  };
}

/// The built-in regime grid. Quick mode shrinks n so the CI smoke stays
/// in seconds; full mode is the README reference measurement.
std::vector<Workload> builtin_workloads(bool quick, std::uint64_t sources) {
  const std::string path_n = quick ? "20000" : "100000";
  const std::string side = quick ? "40" : "70";
  const std::string leaves = quick ? "8192" : "65536";
  return {
      {"deep path", "path:n=" + path_n, "bfs", make_bfs()},
      {"expander", "margulis:side=" + side, "bfs", make_bfs()},
      {"expander", "margulis:side=" + side, "leader-election", make_leader()},
      {"expander", "margulis:side=" + side,
       "batch-bfs k=" + std::to_string(sources), make_batch_bfs(sources)},
      {"star", "complete_bipartite:a=1,b=" + leaves, "bfs", make_bfs()},
      // Delivery-bound regime: 256 concurrent BFS waves keep every arc
      // saturated, so per-round messages dwarf n and the stamp pass is
      // where the time goes. Present in quick mode too — the CI smoke
      // asserts this row exists and stays `identical`.
      {"messages>>n", "margulis:side=" + side, "batch-bfs k=256",
       make_batch_bfs(256)},
  };
}

void run_comparison(const std::vector<Workload>& workloads,
                    const std::string& cache, JsonReport& report) {
  banner("N1 / engine throughput",
         "dense sweep vs event-driven activation: identical results, "
         "rounds/sec measured per regime (deep path = sparse frontier, "
         "expander = everything active, star = one hot round).");
  Table table({"regime", "graph", "algo", "n", "m", "rounds", "messages",
               "dense ms", "sparse ms", "dense rps", "sparse rps", "speedup",
               "identical"});

  for (const auto& w : workloads) {
    const auto spec = scenario::GraphSpec::parse(w.spec);
    const Graph g = cache.empty()
                        ? scenario::Registry::instance().build(spec)
                        : scenario::load_or_generate(spec, cache);
    const auto dense = run_engine(g, w.make, /*force_dense=*/true);
    const auto sparse = run_engine(g, w.make, /*force_dense=*/false);
    const bool identical =
        dense.result.rounds == sparse.result.rounds &&
        dense.result.messages == sparse.result.messages &&
        dense.result.finished == sparse.result.finished &&
        dense.result.arc_sends == sparse.result.arc_sends;
    const double speedup = sparse.ms_per_run > 0.0
                               ? dense.ms_per_run / sparse.ms_per_run
                               : 0.0;
    table.add_row({w.regime, spec.to_string(), w.algo,
                   Table::num(std::size_t{g.node_count()}),
                   Table::num(std::size_t{g.edge_count()}),
                   Table::num(std::size_t{sparse.result.rounds}),
                   Table::num(std::size_t{sparse.result.messages}),
                   Table::num(dense.ms_per_run, 2),
                   Table::num(sparse.ms_per_run, 2),
                   Table::num(dense.rounds_per_sec, 0),
                   Table::num(sparse.rounds_per_sec, 0),
                   Table::num(speedup, 1), identical ? "yes" : "NO"});
    report.row()
        .add("regime", w.regime)
        .add("graph", spec.to_string())
        .add("algo", w.algo)
        .add("n", std::uint64_t{g.node_count()})
        .add("m", std::uint64_t{g.edge_count()})
        .add("rounds", sparse.result.rounds)
        .add("messages", sparse.result.messages)
        .add("dense_ms", dense.ms_per_run)
        .add("sparse_ms", sparse.ms_per_run)
        .add("dense_rounds_per_sec", dense.rounds_per_sec)
        .add("sparse_rounds_per_sec", sparse.rounds_per_sec)
        .add("speedup", speedup)
        .add("identical", identical);
    if (!identical)
      throw std::runtime_error("bench_engine: dense and sparse runs "
                               "disagree on " +
                               spec.to_string() + " / " + w.algo);
  }
  table.print(std::cout);
}

/// Experiment N2: what does leaving telemetry on cost? Measured on the
/// deep-path regime — the engine's worst case for fixed per-round overhead
/// (tens of thousands of rounds that each do almost no work) — plus the
/// expander regime, where real per-round work dilutes the overhead. The
/// "rounds" mode is the one meant to stay on in production; CI guards its
/// deep-path overhead at <= 5%.
void run_telemetry_overhead(bool quick, const std::string& cache,
                            JsonReport& report) {
  banner("N2 / telemetry overhead",
         "engine throughput with telemetry off vs rounds (counter series, "
         "no clocks) vs full (phase timers + histograms + annotations); "
         "sparse engine, worst case = deep path.");
  Table table({"regime", "graph", "off ms", "rounds ms", "full ms",
               "rounds ovh %", "full ovh %"});
  const std::string path_n = quick ? "20000" : "100000";
  const std::string side = quick ? "40" : "70";
  const std::vector<std::pair<std::string, std::string>> regimes = {
      {"deep path", "path:n=" + path_n},
      {"expander", "margulis:side=" + side},
  };
  for (const auto& [regime, spec_text] : regimes) {
    const auto spec = scenario::GraphSpec::parse(spec_text);
    const Graph g = cache.empty()
                        ? scenario::Registry::instance().build(spec)
                        : scenario::load_or_generate(spec, cache);
    const auto make = make_bfs();
    // One timed run of bfs on g under `tmode` (fresh everything, like
    // run_engine's reps).
    const auto one = [&](congest::TelemetryMode tmode) {
      const auto alg = make(g);
      congest::Network net(g);
      congest::Telemetry telemetry(tmode);
      congest::RunOptions opts;
      opts.telemetry = telemetry.enabled() ? &telemetry : nullptr;
      const auto t0 = std::chrono::steady_clock::now();
      net.run(*alg, opts);
      const auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(t1 - t0).count();
    };
    // Interleave the three modes rep by rep and keep each mode's MINIMUM:
    // the modes see the same thermal/frequency drift, and the minimum is
    // the run least disturbed by scheduler noise — the right statistic for
    // an overhead ratio on a shared machine.
    const double est = one(congest::TelemetryMode::kOff);
    const auto reps = static_cast<std::uint64_t>(
        std::clamp(150.0 / std::max(est, 1e-3), 5.0, 60.0));
    double off = est, rounds = 1e300, full = 1e300;
    for (std::uint64_t i = 0; i < reps; ++i) {
      off = std::min(off, one(congest::TelemetryMode::kOff));
      rounds = std::min(rounds, one(congest::TelemetryMode::kRounds));
      full = std::min(full, one(congest::TelemetryMode::kFull));
    }
    const auto pct = [&](double ms) {
      return off > 0.0 ? (ms / off - 1.0) * 100.0 : 0.0;
    };
    table.add_row({regime, spec.to_string(), Table::num(off, 2),
                   Table::num(rounds, 2), Table::num(full, 2),
                   Table::num(pct(rounds), 1), Table::num(pct(full), 1)});
    report.row()
        .add("regime", "telemetry-overhead")
        .add("graph", spec.to_string())
        .add("algo", "bfs")
        .add("off_ms", off)
        .add("rounds_ms", rounds)
        .add("full_ms", full)
        .add("rounds_overhead_pct", pct(rounds))
        .add("full_overhead_pct", pct(full));
  }
  table.print(std::cout);
}

/// Experiment N3: the delivery stamp pass in isolation. Sparse engine both
/// times on the messages>>n workload; the only difference is
/// RunOptions::parallel_stamp_threshold — SIZE_MAX pins the serial stamp
/// loop, 0 routes every non-list round through the per-worker parallel
/// pass. Bit-identical results are enforced (the engine's contract); the
/// speedup is what the parallel pass buys on a delivery-bound round.
void run_parallel_stamp(bool quick, const std::string& cache,
                        JsonReport& report) {
  banner("N3 / parallel delivery stamping",
         "serial vs parallel receiver stamping on the messages>>n regime "
         "(sparse engine, batch-bfs k=256): identical results required, "
         "speedup = serial_ms / parallel_ms.");
  const std::string side = quick ? "40" : "70";
  const auto spec = scenario::GraphSpec::parse("margulis:side=" + side);
  const Graph g = cache.empty() ? scenario::Registry::instance().build(spec)
                                : scenario::load_or_generate(spec, cache);
  const auto make = make_batch_bfs(256);
  // At least two workers so the parallel branch actually executes even on
  // a single-core runner (where it measures ~1.0x, honestly); both runs
  // share the pool so handler dispatch costs cancel out of the ratio.
  ThreadPool pool(std::max<std::size_t>(2, ThreadPool::global().size()));
  const auto serial =
      run_engine(g, make, /*force_dense=*/false, congest::TelemetryMode::kOff,
                 std::numeric_limits<std::size_t>::max(), &pool);
  const auto par =
      run_engine(g, make, /*force_dense=*/false, congest::TelemetryMode::kOff,
                 /*threshold=*/0, &pool);
  const bool identical = serial.result.rounds == par.result.rounds &&
                         serial.result.messages == par.result.messages &&
                         serial.result.finished == par.result.finished &&
                         serial.result.arc_sends == par.result.arc_sends;
  const double speedup =
      par.ms_per_run > 0.0 ? serial.ms_per_run / par.ms_per_run : 0.0;
  Table table({"graph", "algo", "pool", "rounds", "messages", "serial ms",
               "parallel ms", "speedup", "identical"});
  table.add_row({spec.to_string(), "batch-bfs k=256",
                 Table::num(std::size_t{pool.size()}),
                 Table::num(std::size_t{par.result.rounds}),
                 Table::num(std::size_t{par.result.messages}),
                 Table::num(serial.ms_per_run, 2),
                 Table::num(par.ms_per_run, 2), Table::num(speedup, 2),
                 identical ? "yes" : "NO"});
  table.print(std::cout);
  report.row()
      .add("regime", "parallel-stamp")
      .add("graph", spec.to_string())
      .add("algo", "batch-bfs k=256")
      .add("pool", std::uint64_t{pool.size()})
      .add("n", std::uint64_t{g.node_count()})
      .add("m", std::uint64_t{g.edge_count()})
      .add("rounds", par.result.rounds)
      .add("messages", par.result.messages)
      .add("serial_stamp_ms", serial.ms_per_run)
      .add("parallel_stamp_ms", par.ms_per_run)
      .add("stamp_speedup", speedup)
      .add("identical", identical);
  if (!identical)
    throw std::runtime_error(
        "bench_engine: serial and parallel stamp passes disagree on " +
        spec.to_string());
}

/// Experiment N4: composite edge-disjoint execution. A 4-part
/// communication-free edge partition of the expander, one BFS per part —
/// legacy kSequential (one Network per instance, k round loops) vs the
/// default kInterleaved (ONE engine run on the block-diagonal union
/// graph). The two modes must agree on every composite and per-instance
/// cost; the speedup is what interleaving saves in per-run fixed costs.
void run_composite(bool quick, const std::string& cache, JsonReport& report) {
  banner("N4 / interleaved edge-disjoint runs",
         "run_edge_disjoint: sequential (one engine run per instance) vs "
         "interleaved (all instances in one engine run on the union "
         "graph); composite + per-instance costs must be identical.");
  const std::string side = quick ? "40" : "70";
  const auto spec = scenario::GraphSpec::parse("margulis:side=" + side);
  const Graph g = cache.empty() ? scenario::Registry::instance().build(spec)
                                : scenario::load_or_generate(spec, cache);
  constexpr std::uint32_t kParts = 4;
  const auto partition = random_edge_partition(g, kParts, /*seed=*/0x5eed);

  // One timed composite run in `mode` (fresh algorithms every rep, like
  // run_engine), repeated until >= 0.2 s accumulates.
  const auto run_mode = [&](congest::CompositeMode mode) {
    std::pair<congest::CompositeResult, double> out;
    double total_ms = 0.0;
    std::uint64_t reps = 0;
    while (reps < 50 && (reps == 0 || total_ms < 200.0)) {
      std::vector<std::unique_ptr<algo::DistributedBfs>> algs;
      std::vector<congest::EdgeDisjointInstance> work;
      for (const auto& part : partition.parts) {
        algs.push_back(std::make_unique<algo::DistributedBfs>(part.graph, 0));
        work.push_back({&part, algs.back().get()});
      }
      const auto t0 = std::chrono::steady_clock::now();
      auto res = congest::run_edge_disjoint(g, work, {}, mode);
      const auto t1 = std::chrono::steady_clock::now();
      total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      out.first = std::move(res);
      ++reps;
    }
    out.second = total_ms / static_cast<double>(reps);
    return out;
  };
  const auto [seq, seq_ms] = run_mode(congest::CompositeMode::kSequential);
  const auto [inter, inter_ms] = run_mode(congest::CompositeMode::kInterleaved);

  bool identical = seq.rounds == inter.rounds &&
                   seq.messages == inter.messages &&
                   seq.finished == inter.finished &&
                   seq.parent_edge_congestion == inter.parent_edge_congestion &&
                   seq.per_instance.size() == inter.per_instance.size();
  if (identical) {
    for (std::size_t i = 0; i < seq.per_instance.size(); ++i) {
      const auto& a = seq.per_instance[i];
      const auto& b = inter.per_instance[i];
      identical = identical && a.rounds == b.rounds &&
                  a.messages == b.messages && a.finished == b.finished &&
                  a.arc_sends == b.arc_sends;
    }
  }
  const double speedup = inter_ms > 0.0 ? seq_ms / inter_ms : 0.0;
  Table table({"graph", "parts", "rounds", "messages", "max congestion",
               "sequential ms", "interleaved ms", "speedup", "identical"});
  table.add_row({spec.to_string(), Table::num(std::size_t{kParts}),
                 Table::num(std::size_t{inter.rounds}),
                 Table::num(std::size_t{inter.messages}),
                 Table::num(std::size_t{inter.max_parent_edge_congestion()}),
                 Table::num(seq_ms, 2), Table::num(inter_ms, 2),
                 Table::num(speedup, 2), identical ? "yes" : "NO"});
  table.print(std::cout);
  report.row()
      .add("regime", "edge-disjoint composite")
      .add("graph", spec.to_string())
      .add("algo", "bfs x" + std::to_string(kParts))
      .add("n", std::uint64_t{g.node_count()})
      .add("m", std::uint64_t{g.edge_count()})
      .add("rounds", inter.rounds)
      .add("messages", inter.messages)
      .add("max_parent_edge_congestion",
           std::uint64_t{inter.max_parent_edge_congestion()})
      .add("sequential_ms", seq_ms)
      .add("interleaved_ms", inter_ms)
      .add("composite_speedup", speedup)
      .add("identical", identical);
  if (!identical)
    throw std::runtime_error(
        "bench_engine: sequential and interleaved composite runs disagree "
        "on " +
        spec.to_string());
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  using namespace fc;
  const Options opts(argc, argv);
  const bool quick = opts.get_bool("quick");
  const auto sources =
      static_cast<std::uint64_t>(opts.get_int("sources", 64));
  const std::string cache = opts.get("cache", "");
  try {
    std::vector<bench::Workload> work;
    const auto custom = opts.get_all("graph");
    if (!custom.empty()) {
      // Caller-chosen scenarios: compare both engines on bfs +
      // batch-bfs (the sparse- and dense-activation extremes).
      for (const auto& text : custom) {
        work.push_back({"custom", text, "bfs", bench::make_bfs()});
        work.push_back({"custom", text,
                        "batch-bfs k=" + std::to_string(sources),
                        bench::make_batch_bfs(sources)});
      }
    } else {
      work = bench::builtin_workloads(quick, sources);
    }
    bench::JsonReport report("engine");
    report.meta("mode", quick ? "quick" : "full");
    bench::add_run_metadata(report);
    bench::run_comparison(work, cache, report);
    // The overhead, stamp, and composite regimes use their own built-in
    // graphs; custom --graph invocations stay a pure two-engine comparison.
    if (custom.empty()) {
      bench::run_telemetry_overhead(quick, cache, report);
      bench::run_parallel_stamp(quick, cache, report);
      bench::run_composite(quick, cache, report);
    }
    std::cout << "wrote " << report.write() << "\n";
  } catch (const std::exception& err) {
    std::cerr << "bench_engine: " << err.what() << "\n";
    return 2;
  }
  return 0;
}
