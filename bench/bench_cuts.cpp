// Experiment E6 (Theorem 7): estimate ALL cut sizes within (1 ± eps) in
// Õ(n/(lambda eps^2)) rounds by broadcasting a cut sparsifier.
// Sweep eps; verify the error on sampled cuts plus the minimum cut.

#include "bench_common.hpp"

#include "apps/cuts.hpp"
#include "graph/mincut.hpp"

namespace fc::bench {
namespace {

void experiment_e6() {
  banner("E6 / Theorem 7",
         "all-cuts (1+eps) approximation: sparsifier size ~ m ln n/(eps^2 "
         "lambda), broadcast rounds ~ n/(lambda eps^2); max error over 200 "
         "random cuts must stay below eps.");
  Rng rng(51);
  const NodeId n = 256;
  const std::uint32_t d = 128;
  const Graph g = gen::random_regular(n, d, rng);
  Table table({"eps", "p", "sparsifier edges", "m", "rounds", "max err",
               "bound eps"});
  for (double eps : {0.1, 0.2, 0.4, 0.8}) {
    apps::CutApproxOptions opts;
    opts.sparsifier.c = 2.0;
    opts.sparsifier.seed = static_cast<std::uint64_t>(eps * 1000);
    const auto report = apps::approximate_all_cuts(g, d, eps, opts);
    const auto cuts = random_cuts(n, 200, rng);
    const double err = apps::max_cut_error(g, report.sparsifier, cuts);
    table.add_row({Table::num(eps, 2), Table::num(report.sparsifier.p, 3),
                   Table::num(report.sparsifier.size()),
                   Table::num(std::size_t{g.edge_count()}),
                   Table::num(std::size_t{report.total_rounds}),
                   Table::num(err, 3), Table::num(eps, 2)});
  }
  table.print(std::cout);
}

void experiment_e6_lambda() {
  banner("E6b / Theorem 7 lambda scaling",
         "fixed eps = 0.25: rounds shrink ~1/lambda as connectivity grows.");
  Table table({"n", "lambda", "sparsifier edges", "rounds", "rounds*l"});
  Rng seed_rng(53);
  const NodeId n = 256;
  for (std::uint32_t d : {16u, 32u, 64u, 128u}) {
    Rng rng = seed_rng.fork(d);
    const Graph g = gen::random_regular(n, d, rng);
    apps::CutApproxOptions opts;
    opts.sparsifier.c = 4.0;
    const auto report = apps::approximate_all_cuts(g, d, 0.25, opts);
    table.add_row({Table::num(std::size_t{n}), Table::num(std::size_t{d}),
                   Table::num(report.sparsifier.size()),
                   Table::num(std::size_t{report.total_rounds}),
                   Table::num(report.total_rounds * double(d), 0)});
  }
  table.print(std::cout);
}

void experiment_e6_mincut() {
  banner("E6c / Theorem 7 on the minimum cut",
         "the sparsifier preserves the dumbbell's bridge cut exactly in the "
         "p=1 regime and within eps otherwise.");
  Table table({"bridges", "true min cut", "estimate", "rel err"});
  for (NodeId bridges : {2u, 4u, 8u}) {
    const Graph g = gen::dumbbell(32, bridges);
    const auto report = apps::approximate_all_cuts(g, bridges, 0.5);
    std::vector<bool> side(g.node_count(), false);
    for (NodeId v = 0; v < 32; ++v) side[v] = true;
    const double est = report.estimate_cut(g, side);
    table.add_row({Table::num(std::size_t{bridges}),
                   Table::num(std::size_t{bridges}), Table::num(est, 2),
                   Table::num(std::abs(est - bridges) / bridges, 3)});
  }
  table.print(std::cout);
}

// --graph=<spec> override: Theorem 7 all-cuts approximation on
// caller-chosen scenarios; --eps=<e> (default 0.25) sets the accuracy.
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      const Options& opts) {
  const double eps = opts.get_double("eps", 0.25);
  banner("E6 on custom scenarios",
         "all-cuts (1+eps) approximation on --graph=<spec> workloads; "
         "eps = " + Table::num(eps, 2) + ", error on 200 random cuts.");
  Table table({"graph", "n", "m", "lambda", "sparsifier edges", "rounds",
               "max err", "bound eps"});
  Rng rng(51);
  for (const auto& [name, g] : graphs) {
    const auto lambda = spec_lambda(opts, g);
    if (lambda.value == 0) {
      std::cout << "skipping " << name << ": disconnected (lambda = 0)\n";
      continue;
    }
    apps::CutApproxOptions copts;
    copts.sparsifier.c = 4.0;
    const auto report =
        apps::approximate_all_cuts(g, lambda.value, eps, copts);
    const auto cuts = random_cuts(g.node_count(), 200, rng);
    const double err = apps::max_cut_error(g, report.sparsifier, cuts);
    table.add_row({name, Table::num(std::size_t{g.node_count()}),
                   Table::num(std::size_t{g.edge_count()}), lambda_str(lambda),
                   Table::num(report.sparsifier.size()),
                   Table::num(std::size_t{report.total_rounds}),
                   Table::num(err, 3), Table::num(eps, 2)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_cuts", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_e6();
  fc::bench::experiment_e6_lambda();
  fc::bench::experiment_e6_mincut();
  return 0;
}
