// Experiment E5 (Theorem 5 / Corollary 1): (2k-1)-approximate weighted APSP
// via Baswana–Sen spanner + Theorem 1 broadcast, in Õ(n^{1+1/k}/lambda)
// rounds. Sweep the stretch parameter k; report spanner size, rounds, and
// measured stretch on sampled pairs.

#include "bench_common.hpp"

#include <cmath>

#include "apps/weighted_apsp.hpp"

namespace fc::bench {
namespace {

void experiment_e5() {
  banner("E5 / Theorem 5",
         "weighted APSP via (2k-1)-spanner broadcast; rounds ~ "
         "n^{1+1/k}/lambda (fewer rounds for larger k, worse stretch).");
  Rng rng(41);
  const NodeId n = 256;
  const std::uint32_t d = 32;
  const auto g =
      gen::with_random_weights(gen::random_regular(n, d, rng), 1, 1000, rng);
  Table table({"k", "stretch bound", "spanner edges", "n^{1+1/k}", "rounds",
               "worst stretch", "mean stretch"});
  for (std::uint32_t k : {1u, 2u, 3u, 4u, apps::corollary1_k(n)}) {
    apps::WeightedApspOptions wopts;
    wopts.seed = k;
    const auto report = apps::approximate_apsp_weighted(g, d, k, wopts);
    // Measured stretch over sampled sources.
    double worst = 0, sum = 0;
    std::size_t pairs = 0;
    for (NodeId src = 0; src < n; src += 64) {
      const auto exact = dijkstra(g, src);
      const auto est = report.distances_from(src);
      for (NodeId v = 0; v < n; ++v) {
        if (v == src) continue;
        const double r = static_cast<double>(est[v]) / exact[v];
        worst = std::max(worst, r);
        sum += r;
        ++pairs;
      }
    }
    table.add_row(
        {Table::num(std::size_t{k}), Table::num(std::size_t{2 * k - 1}),
         Table::num(report.spanner.edges.size()),
         Table::num(std::pow(n, 1.0 + 1.0 / k), 0),
         Table::num(std::size_t{report.total_rounds}), Table::num(worst, 2),
         Table::num(sum / static_cast<double>(pairs), 2)});
  }
  table.print(std::cout);
  std::cout << "(last row is Corollary 1's k = ceil(log n / log log n) = "
            << apps::corollary1_k(n) << ")\n";
}

void experiment_e5_scaling() {
  banner("E5b / Theorem 5 lambda scaling",
         "fixed k=3: broadcast rounds scale ~1/lambda across graphs.");
  Table table({"n", "lambda", "spanner edges", "rounds", "rounds*l"});
  Rng seed_rng(43);
  const NodeId n = 256;
  for (std::uint32_t d : {16u, 32u, 64u}) {
    Rng rng = seed_rng.fork(d);
    const auto g =
        gen::with_random_weights(gen::random_regular(n, d, rng), 1, 100, rng);
    apps::WeightedApspOptions wopts;
    wopts.seed = 5;
    const auto report = apps::approximate_apsp_weighted(g, d, 3, wopts);
    table.add_row({Table::num(std::size_t{n}), Table::num(std::size_t{d}),
                   Table::num(report.spanner.edges.size()),
                   Table::num(std::size_t{report.total_rounds}),
                   Table::num(report.total_rounds * double(d), 0)});
  }
  table.print(std::cout);
}

// --graph=<spec> override: Theorem 5 on caller-chosen WEIGHTED scenarios
// (weights=lo..hi in the spec; unit weights otherwise). --stretch=<k>
// picks the (2k-1) guarantee; measured stretch is sampled on <= 8 sources.
void experiment_specs(const std::vector<NamedWeightedGraph>& graphs,
                      const Options& opts) {
  const auto k = static_cast<std::uint32_t>(opts.get_int("stretch", 3));
  banner("E5 on custom scenarios",
         "weighted APSP via (2k-1)-spanner broadcast on --graph=<spec> "
         "workloads (weights=lo..hi); k = " + std::to_string(k) + ".");
  Table table({"graph", "n", "m", "lambda", "spanner edges", "rounds",
               "worst stretch", "bound 2k-1"});
  for (const auto& [name, wg] : graphs) {
    const Graph& g = wg.graph();
    const auto lambda = spec_lambda(opts, g);
    if (lambda.value == 0 || !is_connected(g)) {
      std::cout << "skipping " << name
                << ": weighted APSP needs a connected graph\n";
      continue;
    }
    apps::WeightedApspOptions wopts;
    wopts.seed = 5;
    const auto report =
        apps::approximate_apsp_weighted(wg, lambda.value, k, wopts);
    double worst = 0;
    const NodeId step =
        std::max<NodeId>(1, g.node_count() / 8);  // <= 8 sampled sources
    for (NodeId src = 0; src < g.node_count(); src += step) {
      const auto exact = dijkstra(wg, src);
      const auto est = report.distances_from(src);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (v == src || exact[v] == 0) continue;
        worst = std::max(worst, static_cast<double>(est[v]) / exact[v]);
      }
    }
    table.add_row({name, Table::num(std::size_t{g.node_count()}),
                   Table::num(std::size_t{g.edge_count()}), lambda_str(lambda),
                   Table::num(report.spanner.edges.size()),
                   Table::num(std::size_t{report.total_rounds}),
                   Table::num(worst, 2),
                   Table::num(std::size_t{2 * k - 1})});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::weighted_spec_mode(
          "bench_apsp_weighted", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_e5();
  fc::bench::experiment_e5_scaling();
  return 0;
}
