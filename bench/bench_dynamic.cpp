// Dynamic-scenario experiment: incremental re-execution vs full recompute.
//
//   ./bench_dynamic                 # the built-in churn grid
//   ./bench_dynamic --smoke         # tiny CI mode: every row must be
//                                   # identical to the full recompute, else
//                                   # exit 1
//   ./bench_dynamic --graph=rmat:n=4096,deg=8,churn=0.01,updates=4
//
// For every dynamic spec the harness replays the seed-keyed churn schedule
// batch by batch. After each batch it repairs BFS / SSSP with the
// incremental engine path (orphan cascade + label-correcting flood over the
// woken region — src/dynamic/incremental.hpp) AND recomputes from scratch,
// then checks the distance vectors are BIT-IDENTICAL; the MST row repairs
// with the candidate Kruskal against the full kruskal_msf. Each row reports
// wall time for both paths, the message/work ratio, and the identity bit —
// the row is the differential test run at bench scale.
//
// The paper-relevant claim (ROADMAP "dynamics" axis): at churn p <= 0.01
// the incremental path does asymptotically less work than the recompute —
// the affected region is O(p * m) endpoints plus the orphaned subtrees, not
// n — so `speedup` (time) and `work_ratio` (messages, deterministic) both
// clear 2x on the default grid. CI asserts that from BENCH_dynamic.json.
//
// Results land in BENCH_dynamic.json (one row per spec x algo).

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dynamic/incremental.hpp"
#include "dynamic/scenario.hpp"
#include "graph/weighted_graph.hpp"

namespace {

using fc::bench::JsonReport;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct RowTotals {
  double inc_ms = 0;
  double full_ms = 0;
  std::uint64_t inc_messages = 0;
  std::uint64_t full_messages = 0;
  std::uint64_t deleted = 0;
  std::uint64_t inserted = 0;
  std::uint64_t woken = 0;
  std::uint64_t orphaned = 0;
  bool identical = true;
};

void emit(JsonReport& report, const std::string& spec, const char* algo,
          std::uint64_t batches, double churn_p, const RowTotals& t,
          bool* all_identical, RowTotals* grand) {
  grand->inc_ms += t.inc_ms;
  grand->full_ms += t.full_ms;
  const double speedup = t.inc_ms > 0 ? t.full_ms / t.inc_ms : 0;
  const double work_ratio =
      static_cast<double>(t.full_messages) /
      static_cast<double>(t.inc_messages > 0 ? t.inc_messages : 1);
  report.row()
      .add("spec", spec)
      .add("algo", algo)
      .add("batches", batches)
      .add("churn", churn_p)
      .add("deleted", t.deleted)
      .add("inserted", t.inserted)
      .add("woken", t.woken)
      .add("orphaned", t.orphaned)
      .add("incremental_ms", t.inc_ms)
      .add("full_ms", t.full_ms)
      .add("incremental_messages", t.inc_messages)
      .add("full_messages", t.full_messages)
      .add("speedup", speedup)
      .add("work_ratio", work_ratio)
      .add("identical", t.identical);
  std::cout << "  " << algo << ": batches=" << batches
            << " inc=" << t.inc_ms << "ms full=" << t.full_ms
            << "ms speedup=" << speedup << " work_ratio=" << work_ratio
            << (t.identical ? "" : "  MISMATCH") << "\n";
  *all_identical = *all_identical && t.identical;
}

/// Replay one dynamic spec: per batch, incremental repair vs full
/// recompute for BFS, SSSP, and MST, verifying bit-identity as we go.
void run_spec(const std::string& spec_text, JsonReport& report,
              bool* all_identical, RowTotals* grand) {
  fc::dynamic::DynamicScenario sc =
      fc::dynamic::DynamicScenario::parse(spec_text);
  const std::string canon = sc.spec().to_string();
  std::cout << canon << " (n=" << sc.graph().node_count()
            << ", m=" << sc.graph().edge_count() << ")\n";

  const fc::NodeId source = 0;
  fc::dynamic::DynamicBfs bfs(source);
  fc::dynamic::DynamicSssp sssp(source);
  fc::dynamic::DynamicMst mst;
  bfs.recompute(sc.graph());
  sssp.recompute(sc.weighted());
  mst.recompute(sc.weighted());

  RowTotals bfs_t, sssp_t, mst_t;
  const std::uint64_t batches = sc.batches_declared();
  for (std::uint64_t b = 0; b < batches; ++b) {
    const fc::dynamic::UpdateBatch batch = sc.advance();
    const fc::Graph& g = sc.graph();
    const fc::WeightedGraph& wg = sc.weighted();
    bfs_t.deleted += batch.deleted.size();
    bfs_t.inserted += batch.inserted.size();

    // BFS: incremental repair, then a from-scratch engine flood.
    auto t0 = std::chrono::steady_clock::now();
    const auto inc_bfs = bfs.apply_batch(g, batch);
    bfs_t.inc_ms += ms_since(t0);
    bfs_t.inc_messages += inc_bfs.run.messages;
    bfs_t.woken += inc_bfs.woken;
    bfs_t.orphaned += inc_bfs.orphaned;
    fc::dynamic::DynamicBfs full_bfs(source);
    t0 = std::chrono::steady_clock::now();
    const auto full_bfs_run = full_bfs.recompute(g);
    bfs_t.full_ms += ms_since(t0);
    bfs_t.full_messages += full_bfs_run.run.messages;
    bfs_t.identical =
        bfs_t.identical && bfs.distances() == full_bfs.distances();

    // SSSP: same shape over the endpoint-keyed weights.
    t0 = std::chrono::steady_clock::now();
    const auto inc_sssp = sssp.apply_batch(wg, batch);
    sssp_t.inc_ms += ms_since(t0);
    sssp_t.inc_messages += inc_sssp.run.messages;
    sssp_t.woken += inc_sssp.woken;
    sssp_t.orphaned += inc_sssp.orphaned;
    fc::dynamic::DynamicSssp full_sssp(source);
    t0 = std::chrono::steady_clock::now();
    const auto full_sssp_run = full_sssp.recompute(wg);
    sssp_t.full_ms += ms_since(t0);
    sssp_t.full_messages += full_sssp_run.run.messages;
    sssp_t.identical =
        sssp_t.identical && sssp.distances() == full_sssp.distances();

    // MST: candidate Kruskal vs full Kruskal; "messages" are edges scanned.
    t0 = std::chrono::steady_clock::now();
    mst.apply_batch(wg, batch);
    mst_t.inc_ms += ms_since(t0);
    mst_t.inc_messages += mst.last_candidates();
    t0 = std::chrono::steady_clock::now();
    const std::vector<fc::EdgeId> full_forest = fc::kruskal_msf(wg);
    mst_t.full_ms += ms_since(t0);
    mst_t.full_messages += g.edge_count();
    mst_t.identical = mst_t.identical && mst.forest() == full_forest;
  }
  sssp_t.deleted = mst_t.deleted = bfs_t.deleted;
  sssp_t.inserted = mst_t.inserted = bfs_t.inserted;

  const double p = sc.churn().p;
  emit(report, canon, "bfs", batches, p, bfs_t, all_identical, grand);
  emit(report, canon, "sssp", batches, p, sssp_t, all_identical, grand);
  emit(report, canon, "mst", batches, p, mst_t, all_identical, grand);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fc;
  const Options opts(argc, argv);
  const bool smoke = opts.get_bool("smoke");

  bench::banner("bench_dynamic",
                "Incremental re-execution after seed-keyed churn batches vs "
                "full recompute: identical results, a fraction of the work.");

  std::vector<std::string> specs = opts.get_all("graph");
  if (specs.empty()) {
    if (smoke) {
      specs = {
          "rmat:n=256,deg=6,seed=5,churn=0.02,updates=3",
          "torus:rows=16,cols=16,weights=1..64,churn=0.02,updates=3",
      };
    } else {
      specs = {
          "rmat:n=4096,deg=8,seed=5,churn=0.01,updates=4",
          "rmat:n=4096,deg=8,seed=5,weights=1..100,churn=0.01,updates=4",
          "torus:rows=64,cols=64,weights=1..64,churn=0.01,updates=4",
          "dumbbell:s=2048,bridges=8,churn=0.005,updates=4",
      };
    }
  }

  JsonReport report("dynamic");
  bench::add_run_metadata(report);
  report.meta("mode", smoke ? "smoke" : "full");

  bool all_identical = true;
  RowTotals grand;
  try {
    for (const std::string& spec : specs)
      run_spec(spec, report, &all_identical, &grand);
  } catch (const std::exception& err) {
    std::cerr << "bench_dynamic: " << err.what() << "\n";
    return 2;
  }

  // Headline number: total wall time across every (spec, algo) row. CI can
  // assert on this without re-aggregating rows.
  const double overall =
      grand.inc_ms > 0 ? grand.full_ms / grand.inc_ms : 0;
  report.meta("overall_speedup", overall);
  std::cout << "\noverall speedup (all rows): " << overall << "x\n";

  const std::string path = report.write();
  std::cout << "\nartifact written: " << path << "\n";
  if (!all_identical) {
    std::cerr << "bench_dynamic: incremental result diverged from full "
                 "recompute (see rows with identical=false)\n";
    return 1;
  }
  return 0;
}
