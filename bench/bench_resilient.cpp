// Experiment E13 (§1.2 application, Fischer–Parter PODC'23): f-mobile-
// resilient broadcast over the Theorem 2 tree packing.
//
// The packing's T ≈ λ/ log n trees replicate every message; a mobile
// adversary corrupting f edges per round defeats a single tree immediately
// but needs to poison >= T/2 copies of a (node, message) slot to beat the
// majority decode. We sweep f for three adversary strategies.

#include "bench_common.hpp"

#include "apps/resilient.hpp"

namespace fc::bench {
namespace {

void experiment_e13() {
  banner("E13 / FP23 resilient broadcast",
         "n=128, lambda=32, T trees from the Theorem 2 packing, k=32 "
         "messages; failure rate of majority decode vs adversary budget f.");
  Rng rng(91);
  const Graph g = gen::random_regular(128, 32, rng);
  core::DecompositionOptions dopts;
  dopts.C = 1.5;
  const auto packing = core::build_low_congestion_packing(g, 32, 9, dopts);
  std::cout << "packing: " << packing.tree_count() << " trees, max depth "
            << packing.max_tree_depth() << ", max edge load "
            << packing.max_edge_load() << "\n";

  Table table({"adversary", "f", "corrupted copies", "decode failures",
               "failure rate"});
  const std::uint64_t k = 32;
  struct Row {
    apps::AdversaryKind kind;
    const char* name;
  };
  const Row kinds[] = {{apps::AdversaryKind::kRandom, "random"},
                       {apps::AdversaryKind::kTreeFocused, "tree-focused"},
                       {apps::AdversaryKind::kCutFocused, "cut-focused"}};
  for (const auto& kind : kinds) {
    for (std::uint32_t f : {1u, 8u, 64u, 256u}) {
      apps::ResilientOptions opts;
      opts.adversary = kind.kind;
      opts.f = f;
      opts.seed = 7;
      const auto report = apps::resilient_broadcast(g, packing, k, opts);
      table.add_row({kind.name, Table::num(std::size_t{f}),
                     Table::num(std::size_t{report.corrupted_copies}),
                     Table::num(std::size_t{report.decode_failures}),
                     Table::num(report.failure_rate, 4)});
    }
  }
  table.print(std::cout);
}

void experiment_e13_single_vs_packed() {
  banner("E13b / replication is what buys resilience",
         "same adversary budget: a single spanning tree (textbook) vs the "
         "Theorem 2 packing with majority decode.");
  Rng rng(93);
  const Graph g = gen::random_regular(128, 32, rng);
  core::DecompositionOptions dopts;
  dopts.C = 1.5;
  const auto packed = core::build_low_congestion_packing(g, 32, 9, dopts);
  const auto single = core::build_edge_disjoint_packing(g, 4, dopts);  // 1 tree
  Table table({"configuration", "trees", "f", "failure rate"});
  for (std::uint32_t f : {4u, 16u}) {
    apps::ResilientOptions opts;
    opts.adversary = apps::AdversaryKind::kRandom;
    opts.f = f;
    const auto rs = apps::resilient_broadcast(g, single, 32, opts);
    const auto rp = apps::resilient_broadcast(g, packed, 32, opts);
    table.add_row({"single tree", Table::num(single.tree_count()),
                   Table::num(std::size_t{f}), Table::num(rs.failure_rate, 4)});
    table.add_row({"Theorem 2 packing", Table::num(packed.tree_count()),
                   Table::num(std::size_t{f}), Table::num(rp.failure_rate, 4)});
  }
  table.print(std::cout);
}

// --graph=<spec> override: f-mobile-resilient broadcast on caller-chosen
// scenarios; --k=<count> messages (default 32), random adversary, f sweep.
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      const Options& opts) {
  banner("E13 on custom scenarios",
         "FP23 resilient broadcast over the Theorem 2 packing on "
         "--graph=<spec> workloads; random adversary, sweep f.");
  Table table({"graph", "lambda", "trees", "f", "corrupted copies",
               "decode failures", "failure rate"});
  const auto k = static_cast<std::uint64_t>(opts.get_int("k", 32));
  for (const auto& [name, g] : graphs) {
    const auto lambda = spec_lambda(opts, g);
    if (lambda.value == 0) {
      std::cout << "skipping " << name << ": disconnected (lambda = 0)\n";
      continue;
    }
    core::DecompositionOptions dopts;
    dopts.C = 1.5;
    const auto packing = core::build_low_congestion_packing(
        g, lambda.value, std::max(1u, lambda.value / 4), dopts);
    for (std::uint32_t f : {1u, 16u, 128u}) {
      apps::ResilientOptions ropts;
      ropts.adversary = apps::AdversaryKind::kRandom;
      ropts.f = f;
      ropts.seed = 7;
      const auto report = apps::resilient_broadcast(g, packing, k, ropts);
      table.add_row({name, lambda_str(lambda), Table::num(packing.tree_count()),
                     Table::num(std::size_t{f}),
                     Table::num(std::size_t{report.corrupted_copies}),
                     Table::num(std::size_t{report.decode_failures}),
                     Table::num(report.failure_rate, 4)});
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_resilient", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_e13();
  fc::bench::experiment_e13_single_vs_packed();
  return 0;
}
