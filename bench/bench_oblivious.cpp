// Experiment E9 (remark after Theorem 1): broadcasting WITHOUT knowing
// lambda. The exponential search tries lambda_tilde = delta, delta/2, ...;
// each probe costs one O((n log n)/delta) validity sweep. On graphs with
// delta >> lambda (dumbbells) the search pays ~log2(delta/lambda) probes;
// on near-regular graphs it accepts the first guess.

#include "bench_common.hpp"

#include <cmath>

#include "core/fast_broadcast.hpp"
#include "graph/mincut.hpp"

namespace fc::bench {
namespace {

void experiment_e9() {
  banner("E9 / lambda-oblivious broadcast",
         "exponential search cost: probes vs log2(delta/lambda); total "
         "rounds vs the lambda-aware run on the same instance.");
  Table table({"graph", "delta", "lambda", "log2(d/l)", "probes",
               "search rounds", "oblivious total", "aware total"});
  Rng rng(71);

  struct Case {
    std::string name;
    Graph g;
    std::uint32_t lambda;
  };
  std::vector<Case> cases;
  cases.push_back({"dumbbell(64,2)", gen::dumbbell(64, 2), 2});
  cases.push_back({"dumbbell(64,8)", gen::dumbbell(64, 8), 8});
  cases.push_back({"dumbbell(64,32)", gen::dumbbell(64, 32), 32});
  {
    Rng g_rng = rng.fork(1);
    cases.push_back({"regular(256,32)", gen::random_regular(256, 32, g_rng), 32});
  }
  cases.push_back({"thick_path(16,8)", gen::thick_path(16, 8), 8});

  for (auto& c : cases) {
    const std::uint32_t delta = min_degree(c.g);
    const std::uint64_t k = 2ull * c.g.node_count();
    const auto msgs = random_messages(c.g, k, rng);
    const auto oblivious = core::run_fast_broadcast_oblivious(c.g, msgs);
    const auto aware = core::run_fast_broadcast(c.g, c.lambda, msgs);
    table.add_row(
        {c.name, Table::num(std::size_t{delta}),
         Table::num(std::size_t{c.lambda}),
         Table::num(std::log2(static_cast<double>(delta) / c.lambda), 1),
         Table::num(std::size_t{oblivious.search_iterations}),
         Table::num(std::size_t{oblivious.search_rounds}),
         Table::num(std::size_t{oblivious.total_rounds}),
         Table::num(std::size_t{aware.total_rounds})});
    if (!oblivious.complete || !aware.complete)
      std::cout << "WARNING: incomplete broadcast on " << c.name << "\n";
  }
  table.print(std::cout);
}

// --graph=<spec> override: the λ-oblivious exponential search on
// caller-chosen scenarios; --k=<count> messages (default 2n).
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      const Options& opts) {
  banner("E9 on custom scenarios",
         "lambda-oblivious vs lambda-aware broadcast on --graph=<spec> "
         "workloads; probes track log2(delta/lambda).");
  Table table({"graph", "delta", "lambda", "probes", "search rounds",
               "oblivious total", "aware total"});
  Rng rng(71);
  for (const auto& [name, g] : graphs) {
    const auto lambda = spec_lambda(opts, g);
    if (lambda.value == 0) {
      std::cout << "skipping " << name << ": disconnected (lambda = 0)\n";
      continue;
    }
    const std::uint64_t k =
        opts.has("k") ? static_cast<std::uint64_t>(opts.get_int("k", 0))
                      : 2ull * g.node_count();
    const auto msgs = random_messages(g, k, rng);
    const auto oblivious = core::run_fast_broadcast_oblivious(g, msgs);
    const auto aware = core::run_fast_broadcast(g, lambda.value, msgs);
    table.add_row({name, Table::num(std::size_t{min_degree(g)}),
                   lambda_str(lambda),
                   Table::num(std::size_t{oblivious.search_iterations}),
                   Table::num(std::size_t{oblivious.search_rounds}),
                   Table::num(std::size_t{oblivious.total_rounds}),
                   Table::num(std::size_t{aware.total_rounds})});
    if (!oblivious.complete || !aware.complete)
      std::cout << "WARNING: incomplete broadcast on " << name << "\n";
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_oblivious", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_e9();
  return 0;
}
