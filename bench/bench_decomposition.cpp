// Experiment E2 (Theorem 2 / Lemma 5): the communication-free random edge
// partition yields lambda/(C ln n) spanning subgraphs whose diameter is
// O((C n log n)/delta).
//
// Table 1: sweep the constant C at fixed (n, lambda): small C gives more
//          parts but risks disconnection — exactly the n^{-Omega(C)}
//          failure probability of the theorem.
// Table 2: sweep lambda = delta at fixed C: the measured max tree depth
//          tracks (n log n)/delta.

#include "bench_common.hpp"

#include <cmath>

#include "core/decomposition.hpp"

namespace fc::bench {
namespace {

void sweep_constant() {
  banner("E2a / Theorem 2, sweep C",
         "n=1024, lambda=delta=64, 5 seeds per row. spanning%% is the "
         "fraction of seeds where EVERY part spans (prob 1 - n^{-Omega(C)}).");
  Rng rng(11);
  const NodeId n = 1024;
  const std::uint32_t d = 64;
  const Graph g = gen::random_regular(n, d, rng);
  Table table({"C", "parts", "spanning%", "max depth", "budget Cn ln n/d",
               "depth/budget"});
  for (double C : {0.75, 1.0, 1.5, 2.0, 3.0}) {
    int ok = 0;
    std::uint32_t depth = 0, parts = 0;
    const int seeds = 5;
    for (int s = 0; s < seeds; ++s) {
      core::DecompositionOptions opts;
      opts.C = C;
      opts.seed = 100 + s;
      const auto dec = core::decompose(g, d, opts);
      parts = dec.parts;
      if (dec.all_spanning()) {
        ++ok;
        depth = std::max(depth, dec.max_tree_depth());
      }
    }
    const double budget = core::Decomposition::diameter_budget(n, d, C);
    table.add_row({Table::num(C, 2), Table::num(std::size_t{parts}),
                   Table::num(100.0 * ok / seeds, 0),
                   Table::num(std::size_t{depth}), Table::num(budget, 1),
                   Table::num(budget > 0 ? depth / budget : 0.0, 3)});
  }
  table.print(std::cout);
}

void sweep_lambda() {
  banner("E2b / Theorem 2, sweep lambda",
         "C=2, n=1024. Max BFS-tree depth across parts vs (n ln n)/delta.");
  Table table({"lambda=delta", "parts", "max depth", "(n ln n)/d",
               "depth*d/(n ln n)"});
  Rng seed_rng(13);
  const NodeId n = 1024;
  for (std::uint32_t d : {16u, 32u, 64u, 128u}) {
    Rng rng = seed_rng.fork(d);
    const Graph g = gen::random_regular(n, d, rng);
    core::DecompositionOptions opts;
    opts.C = 2.0;
    const auto dec = core::decompose(g, d, opts);
    const double scale = n * std::log(static_cast<double>(n)) / d;
    table.add_row({Table::num(std::size_t{d}),
                   Table::num(std::size_t{dec.parts}),
                   Table::num(std::size_t{dec.max_tree_depth()}),
                   Table::num(scale, 1),
                   Table::num(dec.max_tree_depth() / scale, 3)});
    if (!dec.all_spanning())
      std::cout << "WARNING: non-spanning part at d=" << d << "\n";
  }
  table.print(std::cout);
}

void lemma5_sampling() {
  banner("E2c / Lemma 5 directly",
         "Sample each edge with p = C ln n / lambda: the subgraph is "
         "spanning and has diameter O(C n log n / delta) w.h.p.");
  Table table({"n", "lambda", "p", "connected?", "diam (2-sweep)",
               "n ln n/d"});
  Rng seed_rng(17);
  for (NodeId n : {512u, 1024u}) {
    for (std::uint32_t d : {32u, 64u}) {
      Rng rng = seed_rng.fork(mix64(n, d));
      const Graph g = gen::random_regular(n, d, rng);
      const double p =
          std::min(1.0, 2.0 * std::log(static_cast<double>(n)) / d);
      const auto kept = sample_edges(g, p, rng);
      const Subgraph s = make_subgraph(g, kept);
      const bool conn = is_connected(s.graph);
      table.add_row(
          {Table::num(std::size_t{n}), Table::num(std::size_t{d}),
           Table::num(p, 3), conn ? "yes" : "NO",
           conn ? Table::num(std::size_t{diameter_double_sweep(s.graph)})
                : std::string("-"),
           Table::num(n * std::log(static_cast<double>(n)) / d, 1)});
    }
  }
  table.print(std::cout);
}

// --graph=<spec> override: the Theorem 2 partition on caller-chosen
// scenarios; --C=<c> (default 2) sets the sampling constant.
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      const Options& opts) {
  const double C = opts.get_double("C", 2.0);
  banner("E2 on custom scenarios",
         "random edge partition (Theorem 2) on --graph=<spec> workloads: "
         "parts, spanning check, max tree depth vs the (C n ln n)/delta "
         "budget; C = " + Table::num(C, 2) + ".");
  Table table({"graph", "n", "lambda", "parts", "spanning", "max depth",
               "budget", "depth/budget"});
  for (const auto& [name, g] : graphs) {
    const auto lambda = spec_lambda(opts, g);
    if (lambda.value == 0) {
      std::cout << "skipping " << name << ": disconnected (lambda = 0)\n";
      continue;
    }
    core::DecompositionOptions dopts;
    dopts.C = C;
    const auto dec = core::decompose(g, lambda.value, dopts);
    const double budget =
        core::Decomposition::diameter_budget(g.node_count(), min_degree(g), C);
    const auto depth = dec.max_tree_depth();
    table.add_row({name, Table::num(std::size_t{g.node_count()}),
                   lambda_str(lambda), Table::num(std::size_t{dec.parts}),
                   dec.all_spanning() ? "yes" : "NO",
                   Table::num(std::size_t{depth}), Table::num(budget, 1),
                   Table::num(budget > 0 ? depth / budget : 0.0, 3)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_decomposition", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::sweep_constant();
  fc::bench::sweep_lambda();
  fc::bench::lemma5_sampling();
  return 0;
}
