// Experiment E1 (Theorem 1) + E11 (§1.2 congested clique simulation).
//
// E1a: fast broadcast vs the textbook O(D + k) pipeline across (n, λ, k).
//      Paper shape: for k = Ω(n) and λ ≫ log n the fast broadcast wins by
//      ~λ/log n; measured rounds track O((n log n)/δ + (k log n)/λ).
// E1b: crossover in k for fixed (n, λ): textbook wins for tiny k (its
//      constant is smaller), fast broadcast wins once k log n / λ ≪ k.
// E11: one Broadcast Congested Clique round (k = n) in Õ(n/λ) rounds.

#include "bench_common.hpp"

#include <cmath>

#include "core/fast_broadcast.hpp"
#include "graph/mincut.hpp"

namespace fc::bench {
namespace {

void experiment_e1a() {
  banner("E1a / Theorem 1",
         "k-broadcast rounds: fast (decomposition) vs textbook (single tree); "
         "prediction = (n ln n)/delta + (k ln n)/lambda, floor = k/lambda.");
  Table table({"n", "lambda=delta", "k", "D", "fast", "textbook", "speedup",
               "pred", "fast/pred", "floor k/l"});
  Rng seed_rng(20240412);
  for (NodeId n : {256u, 512u, 1024u}) {
    for (std::uint32_t d : {16u, 32u, 64u}) {
      Rng rng = seed_rng.fork(mix64(n, d));
      const Graph g = gen::random_regular(n, d, rng);
      const std::uint64_t k = 4ull * n;
      const auto msgs = random_messages(g, k, rng);
      core::FastBroadcastOptions opts;
      const auto fast = core::run_fast_broadcast(g, d, msgs, opts);
      const auto slow = core::run_textbook_broadcast(g, msgs, opts);
      const double pred = core::theorem1_prediction(n, d, d, k);
      table.add_row(
          {Table::num(std::size_t{n}), Table::num(std::size_t{d}),
           Table::num(std::size_t{k}),
           Table::num(std::size_t{diameter_double_sweep(g)}),
           Table::num(std::size_t{fast.total_rounds}),
           Table::num(std::size_t{slow.total_rounds}),
           Table::num(static_cast<double>(slow.total_rounds) /
                          static_cast<double>(fast.total_rounds),
                      2),
           Table::num(pred, 0),
           Table::num(static_cast<double>(fast.total_rounds) / pred, 2),
           Table::num(core::theorem3_lower_bound(k, d), 0)});
      if (!fast.complete || !slow.complete)
        std::cout << "WARNING: incomplete broadcast at n=" << n << "\n";
    }
  }
  table.print(std::cout);
}

// --graph=<spec> override: the E1a comparison on caller-chosen scenarios
// instead of the built-in random-regular grid. λ is measured exactly, so
// any registered family (bottleneck or high-connectivity) is fair game.
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      std::uint64_t k_opt) {
  banner("E1a on custom scenarios",
         "fast broadcast (Thm 1) vs textbook pipeline on --graph=<spec> "
         "workloads; lambda measured by exact edge connectivity.");
  Table table({"graph", "n", "m", "lambda", "k", "fast", "textbook",
               "speedup"});
  Rng seed_rng(20240412);
  for (const auto& [name, g] : graphs) {
    const std::uint32_t lambda = edge_connectivity(g);
    if (lambda == 0) {
      std::cout << "skipping " << name
                << ": disconnected (lambda = 0); fast broadcast needs a "
                   "connected graph\n";
      continue;
    }
    const std::uint64_t k = k_opt != 0 ? k_opt : 4ull * g.node_count();
    Rng rng = seed_rng.fork(mix64(g.node_count(), g.edge_count()));
    const auto msgs = random_messages(g, k, rng);
    const auto fast = core::run_fast_broadcast(g, lambda, msgs);
    const auto slow = core::run_textbook_broadcast(g, msgs);
    table.add_row(
        {name, Table::num(std::size_t{g.node_count()}),
         Table::num(std::size_t{g.edge_count()}),
         Table::num(std::size_t{lambda}), Table::num(std::size_t{k}),
         Table::num(std::size_t{fast.total_rounds}),
         Table::num(std::size_t{slow.total_rounds}),
         Table::num(static_cast<double>(slow.total_rounds) /
                        static_cast<double>(fast.total_rounds),
                    2)});
    if (!fast.complete || !slow.complete)
      std::cout << "WARNING: incomplete broadcast on " << name << "\n";
  }
  table.print(std::cout);
}

void experiment_e1b() {
  banner("E1b / Theorem 1 crossover",
         "fixed n=512, lambda=32; sweep k. Textbook O(D+k) vs fast "
         "O((n log n)/d + (k log n)/l): fast wins once k is large.");
  Rng rng(7);
  const NodeId n = 512;
  const std::uint32_t d = 32;
  const Graph g = gen::random_regular(n, d, rng);
  Table table({"k", "fast", "textbook", "winner"});
  for (std::uint64_t k : {32ull, 128ull, 512ull, 2048ull, 8192ull}) {
    const auto msgs = random_messages(g, k, rng);
    core::FastBroadcastOptions opts;
    const auto fast = core::run_fast_broadcast(g, d, msgs, opts);
    const auto slow = core::run_textbook_broadcast(g, msgs, opts);
    table.add_row({Table::num(std::size_t{k}),
                   Table::num(std::size_t{fast.total_rounds}),
                   Table::num(std::size_t{slow.total_rounds}),
                   fast.total_rounds < slow.total_rounds ? "fast" : "textbook"});
  }
  table.print(std::cout);
}

void experiment_e11() {
  banner("E11 / DKO14 simulation",
         "One Broadcast Congested Clique round (k = n, one message per "
         "node) in O((n log n)/lambda) rounds; universal floor n/lambda.");
  Table table({"n", "lambda", "rounds", "(n ln n)/l", "rounds/pred",
               "floor n/l"});
  Rng seed_rng(99);
  for (NodeId n : {256u, 512u, 1024u}) {
    for (std::uint32_t d : {16u, 64u}) {
      Rng rng = seed_rng.fork(mix64(n, d, 3));
      const Graph g = gen::random_regular(n, d, rng);
      std::vector<algo::PlacedMessage> msgs;
      for (NodeId v = 0; v < n; ++v) msgs.push_back({v, v, rng()});
      const auto report = core::run_fast_broadcast(g, d, msgs);
      const double pred = n * std::log(static_cast<double>(n)) / d;
      table.add_row({Table::num(std::size_t{n}), Table::num(std::size_t{d}),
                     Table::num(std::size_t{report.total_rounds}),
                     Table::num(pred, 0),
                     Table::num(report.total_rounds / pred, 2),
                     Table::num(static_cast<double>(n) / d, 1)});
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_broadcast", argc, argv, [&](const auto& graphs) {
            const fc::Options opts(argc, argv);
            fc::bench::experiment_specs(
                graphs, static_cast<std::uint64_t>(opts.get_int("k", 0)));
          }))
    return *rc;
  fc::bench::experiment_e1a();
  fc::bench::experiment_e1b();
  fc::bench::experiment_e11();
  return 0;
}
