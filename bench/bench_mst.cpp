// Distributed MST (Borůvka/GHS fragment merging, apps/mst): phase counts
// track ceil(log2 n), per-phase cost splits into the 2m-message fragment
// announce plus the fragment-tree aggregation — which now runs as a
// convergecast (algo::ForestEcho, at most two messages per tree edge) with
// the PR3 min-flood kept as the measured baseline. Every row prints both
// modes side by side; "merge sav" is the message saving of the convergecast
// on the aggregation bucket. The edge set matches the serial Kruskal
// reference exactly in both modes (unique MOEs under the (weight, EdgeId)
// key order).

#include "bench_common.hpp"

#include <cmath>

#include "apps/mst.hpp"

namespace fc::bench {
namespace {

Table mst_table() {
  return Table({"graph", "n", "m", "phases", "lg n", "cc rounds", "cc msgs",
                "cc merge", "fl rounds", "fl msgs", "fl merge", "merge sav",
                "kruskal"});
}

void mst_row(Table& table, const std::string& name, const WeightedGraph& g) {
  apps::MstOptions flood_opts;
  flood_opts.merge = apps::MstMerge::kFlood;
  const auto cc = apps::distributed_mst(g);
  const auto fl = apps::distributed_mst(g, flood_opts);
  const auto ref = kruskal_msf(g);
  const bool match = cc.tree_edges == ref && fl.tree_edges == ref &&
                     cc.fragment == fl.fragment;
  const NodeId n = g.graph().node_count();
  const double saving =
      fl.merge_messages == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(cc.merge_messages) /
                               static_cast<double>(fl.merge_messages));
  table.add_row({name, Table::num(std::size_t{n}),
                 Table::num(std::size_t{g.graph().edge_count()}),
                 Table::num(std::size_t{cc.phases}),
                 Table::num(std::ceil(std::log2(std::max<NodeId>(2, n))), 0),
                 Table::num(std::size_t{cc.rounds}),
                 Table::num(std::size_t{cc.messages}),
                 Table::num(std::size_t{cc.merge_messages}),
                 Table::num(std::size_t{fl.rounds}),
                 Table::num(std::size_t{fl.messages}),
                 Table::num(std::size_t{fl.merge_messages}),
                 Table::num(saving, 1) + "%",
                 match ? "match" : "MISMATCH"});
}

void experiment_m1() {
  banner("M1 / Boruvka phase scaling",
         "fragment count at least halves per phase: phases <= ceil(lg n) "
         "across sizes; per-phase messages ~ 2m (the fragment announce) "
         "plus the aggregation bucket the convergecast shrinks.");
  Table table = mst_table();
  Rng seed_rng(61);
  for (const NodeId n : {64u, 256u, 1024u}) {
    Rng rng = seed_rng.fork(n);
    mst_row(table, "random_regular d=8 n=" + std::to_string(n),
            gen::with_hashed_weights(gen::random_regular(n, 8, rng), 1, 1000,
                                     n));
  }
  table.print(std::cout);
}

void experiment_m1_families() {
  banner("M1b / MST across connectivity regimes",
         "same n, different lambda/delta regimes: deep bottleneck families "
         "re-flood the most, so the convergecast saves the largest share of "
         "their merge messages.");
  Table table = mst_table();
  mst_row(table, "thick_path:groups=32,width=8",
          gen::with_hashed_weights(gen::thick_path(32, 8), 1, 100, 7));
  mst_row(table, "ring_of_cliques:groups=16,width=16",
          gen::with_hashed_weights(gen::ring_of_cliques(16, 16), 1, 100, 7));
  mst_row(table, "margulis:side=16",
          gen::with_hashed_weights(gen::margulis_expander(16), 1, 100, 7));
  mst_row(table, "hypercube:dim=8",
          gen::with_hashed_weights(gen::hypercube(8), 1, 100, 7));
  table.print(std::cout);
}

// --graph=<spec> override: distributed MST on caller-chosen WEIGHTED
// scenarios (weights=lo..hi; unit weights otherwise). Disconnected specs
// are fine — the result is the minimum spanning forest.
void experiment_specs(const std::vector<NamedWeightedGraph>& graphs) {
  banner("MST on custom scenarios",
         "Boruvka fragment merging on --graph=<spec> workloads, "
         "convergecast (cc) versus flood-baseline (fl) merges; edge set "
         "checked against serial Kruskal in both modes.");
  Table table = mst_table();
  for (const auto& [name, wg] : graphs) mst_row(table, name, wg);
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::weighted_spec_mode(
          "bench_mst", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs);
          }))
    return *rc;
  fc::bench::experiment_m1();
  fc::bench::experiment_m1_families();
  return 0;
}
