// Distributed MST (Borůvka/GHS fragment merging, apps/mst): phase counts
// track ceil(log2 n), per-phase cost is dominated by the 2m-message
// fragment announce, and the resulting edge set matches the serial Kruskal
// reference exactly (unique MOEs under the (weight, EdgeId) key order).

#include "bench_common.hpp"

#include <cmath>

#include "apps/mst.hpp"

namespace fc::bench {
namespace {

Table mst_table() {
  return Table({"graph", "n", "m", "phases", "lg n", "rounds", "messages",
                "max edge", "msf weight", "kruskal"});
}

void mst_row(Table& table, const std::string& name, const WeightedGraph& g) {
  const auto rep = apps::distributed_mst(g);
  const auto ref = kruskal_msf(g);
  const bool match = rep.tree_edges == ref;
  const NodeId n = g.graph().node_count();
  table.add_row({name, Table::num(std::size_t{n}),
                 Table::num(std::size_t{g.graph().edge_count()}),
                 Table::num(std::size_t{rep.phases}),
                 Table::num(std::ceil(std::log2(std::max<NodeId>(2, n))), 0),
                 Table::num(std::size_t{rep.rounds}),
                 Table::num(std::size_t{rep.messages}),
                 Table::num(std::size_t{rep.max_edge_congestion(g.graph())}),
                 Table::num(static_cast<std::size_t>(rep.total_weight)),
                 match ? "match" : "MISMATCH"});
}

void experiment_m1() {
  banner("M1 / Boruvka phase scaling",
         "fragment count at least halves per phase: phases <= ceil(lg n) "
         "across sizes; per-phase messages ~ 2m (the fragment announce).");
  Table table = mst_table();
  Rng seed_rng(61);
  for (const NodeId n : {64u, 256u, 1024u}) {
    Rng rng = seed_rng.fork(n);
    mst_row(table, "random_regular d=8 n=" + std::to_string(n),
            gen::with_hashed_weights(gen::random_regular(n, 8, rng), 1, 1000,
                                     n));
  }
  table.print(std::cout);
}

void experiment_m1_families() {
  banner("M1b / MST across connectivity regimes",
         "same n, different lambda/delta regimes: bottleneck families pay "
         "rounds for fragment diameter, expanders pay messages.");
  Table table = mst_table();
  mst_row(table, "thick_path:groups=32,width=8",
          gen::with_hashed_weights(gen::thick_path(32, 8), 1, 100, 7));
  mst_row(table, "ring_of_cliques:groups=16,width=16",
          gen::with_hashed_weights(gen::ring_of_cliques(16, 16), 1, 100, 7));
  mst_row(table, "margulis:side=16",
          gen::with_hashed_weights(gen::margulis_expander(16), 1, 100, 7));
  mst_row(table, "hypercube:dim=8",
          gen::with_hashed_weights(gen::hypercube(8), 1, 100, 7));
  table.print(std::cout);
}

// --graph=<spec> override: distributed MST on caller-chosen WEIGHTED
// scenarios (weights=lo..hi; unit weights otherwise). Disconnected specs
// are fine — the result is the minimum spanning forest.
void experiment_specs(const std::vector<NamedWeightedGraph>& graphs) {
  banner("MST on custom scenarios",
         "Boruvka fragment merging on --graph=<spec> workloads; edge set "
         "checked against serial Kruskal.");
  Table table = mst_table();
  for (const auto& [name, wg] : graphs) mst_row(table, name, wg);
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::weighted_spec_mode(
          "bench_mst", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs);
          }))
    return *rc;
  fc::bench::experiment_m1();
  fc::bench::experiment_m1_families();
  return 0;
}
