// Experiment E15 (§1.3 / CPT20 context): aggregate-computation throughput
// over the Theorem 2 decomposition. λ' edge-disjoint part trees answer λ'
// independent aggregate queries concurrently, so a batch of q queries costs
// ~ceil(q/λ') tree latencies instead of q on a single tree — the
// "aggregation is easy, broadcast is the hard part" contrast the paper
// draws in §1.3.

#include "bench_common.hpp"

#include "apps/aggregation.hpp"

namespace fc::bench {
namespace {

void experiment_e15() {
  banner("E15 / parallel aggregation",
         "q aggregate queries (min/max/sum) on n=256, lambda=64: batched "
         "over the decomposition vs sequential on one BFS tree.");
  Rng rng(111);
  const NodeId n = 256;
  const std::uint32_t d = 64;
  const Graph g = gen::random_regular(n, d, rng);

  Table table({"queries", "parts", "decomposed rounds", "single-tree rounds",
               "throughput gain"});
  for (std::size_t q : {4u, 8u, 16u, 32u, 64u}) {
    std::vector<apps::AggregateQuery> queries(q);
    for (std::size_t i = 0; i < q; ++i) {
      queries[i].op = static_cast<algo::AggregateOp>(i % 3);
      queries[i].values.resize(n);
      for (auto& v : queries[i].values) v = rng.below(1'000'000);
    }
    const auto report = apps::multi_aggregate(g, d, std::move(queries));
    table.add_row(
        {Table::num(q), Table::num(std::size_t{report.parts}),
         Table::num(std::size_t{report.rounds}),
         Table::num(std::size_t{report.baseline_rounds}),
         Table::num(static_cast<double>(report.baseline_rounds) /
                        static_cast<double>(report.rounds),
                    2)});
  }
  table.print(std::cout);
}

// --graph=<spec> override: the E15 batching comparison on caller-chosen
// scenarios. λ is measured (or taken from --lambda); the query batch sizes
// sweep as in the built-in grid.
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      const Options& opts) {
  banner("E15 on custom scenarios",
         "batched aggregate queries over the Theorem 2 decomposition vs "
         "sequential single-tree execution on --graph=<spec> workloads.");
  Table table({"graph", "n", "lambda", "queries", "parts", "decomposed",
               "single-tree", "gain"});
  Rng rng(111);
  for (const auto& [name, g] : graphs) {
    const auto lambda = spec_lambda(opts, g);
    if (lambda.value == 0) {
      std::cout << "skipping " << name << ": disconnected (lambda = 0)\n";
      continue;
    }
    for (std::size_t q : {8u, 32u}) {
      std::vector<apps::AggregateQuery> queries(q);
      for (std::size_t i = 0; i < q; ++i) {
        queries[i].op = static_cast<algo::AggregateOp>(i % 3);
        queries[i].values.resize(g.node_count());
        for (auto& v : queries[i].values) v = rng.below(1'000'000);
      }
      const auto report = apps::multi_aggregate(g, lambda.value,
                                                std::move(queries));
      table.add_row(
          {name, Table::num(std::size_t{g.node_count()}), lambda_str(lambda),
           Table::num(q), Table::num(std::size_t{report.parts}),
           Table::num(std::size_t{report.rounds}),
           Table::num(std::size_t{report.baseline_rounds}),
           Table::num(static_cast<double>(report.baseline_rounds) /
                          static_cast<double>(report.rounds),
                      2)});
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_aggregation", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_e15();
  return 0;
}
