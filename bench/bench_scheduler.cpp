// Experiment E10 (Theorem 12, Ghaffari PODC'15): co-scheduling many tree
// broadcasts that SHARE edges. The makespan of the store-and-forward
// execution is compared to the congestion + dilation lower bound; random
// start delays keep it near O(congestion + dilation log^2 n).

#include "bench_common.hpp"

#include <chrono>
#include <cmath>

#include "congest/scheduler.hpp"
#include "graph/partition.hpp"

namespace fc::bench {
namespace {

/// Wall-time a schedule_tree_broadcasts call — the packet-queue throughput
/// line (the flat arena queue replaced per-arc deques; compare this column
/// across revisions to see the per-packet heap churn go away).
struct TimedSchedule {
  congest::ScheduleResult result;
  double ms = 0.0;
  double khops_per_sec() const {
    return ms > 0.0
               ? static_cast<double>(result.total_packet_hops) / ms
               : 0.0;
  }
};

TimedSchedule timed_schedule(const Graph& g,
                             const std::vector<congest::TreeJob>& jobs) {
  const auto t0 = std::chrono::steady_clock::now();
  TimedSchedule out{congest::schedule_tree_broadcasts(g, jobs), 0.0};
  const auto t1 = std::chrono::steady_clock::now();
  out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

void experiment_e10() {
  banner("E10 / Theorem 12",
         "J jobs of p packets each down BFS trees with shared edges: "
         "makespan vs lower bound max(congestion, dilation) and the "
         "C + d log^2 n envelope.");
  Rng rng(81);
  const NodeId n = 256;
  const std::uint32_t d = 16;
  const Graph g = gen::random_regular(n, d, rng);

  Table table({"jobs", "packets", "congestion C", "dilation d",
               "makespan (no delay)", "makespan (rand delay)", "LB max(C,d)",
               "C + d*log2^2 n", "sim ms", "khops/s"});
  for (std::uint32_t jobs : {2u, 4u, 8u, 16u}) {
    const std::uint32_t packets = 32;
    std::vector<algo::SpanningTree> trees;
    trees.reserve(jobs);
    for (std::uint32_t j = 0; j < jobs; ++j)
      trees.push_back(
          algo::run_bfs(g, static_cast<NodeId>(rng.below(n))).tree);

    std::vector<congest::TreeJob> naive, delayed;
    for (std::uint32_t j = 0; j < jobs; ++j) {
      naive.push_back({&trees[j], packets, 0});
      delayed.push_back({&trees[j], packets, 0});
    }
    const auto naive_run = timed_schedule(g, naive);
    const auto& res_naive = naive_run.result;
    congest::randomize_delays(delayed, res_naive.congestion / 2 + 1, rng);
    const auto res_delay = congest::schedule_tree_broadcasts(g, delayed);

    const double log2n = std::log2(static_cast<double>(n));
    table.add_row(
        {Table::num(std::size_t{jobs}), Table::num(std::size_t{packets}),
         Table::num(std::size_t{res_naive.congestion}),
         Table::num(std::size_t{res_naive.dilation}),
         Table::num(std::size_t{res_naive.makespan}),
         Table::num(std::size_t{res_delay.makespan}),
         Table::num(std::max(res_naive.congestion, res_naive.dilation)),
         Table::num(res_naive.congestion +
                        res_naive.dilation * log2n * log2n,
                    0),
         Table::num(naive_run.ms, 2),
         Table::num(naive_run.khops_per_sec(), 0)});
  }
  table.print(std::cout);
}

void experiment_e10_disjoint_vs_shared() {
  banner("E10b / edge-disjoint vs shared trees",
         "the Theorem 1 regime (edge-disjoint trees) schedules with ZERO "
         "interference: makespan equals one job's pipeline, while the same "
         "jobs on a single shared tree serialize.");
  Rng rng(83);
  const Graph g = gen::random_regular(128, 32, rng);
  // Edge-disjoint trees from the Theorem 2 partition.
  const auto partition = random_edge_partition(g, 4, 7);
  std::vector<algo::SpanningTree> trees;
  std::vector<bool> ok;
  for (const auto& part : partition.parts) {
    auto t = algo::run_bfs(part.graph, 0).tree;
    ok.push_back(t.covered == g.node_count());
    trees.push_back(std::move(t));
  }
  // Lift is unnecessary here: each job runs on its own part's arcs; for the
  // shared-tree comparison we use one global BFS tree for all jobs.
  const auto shared = algo::run_bfs(g, 0).tree;
  const std::uint32_t packets = 64;

  std::vector<congest::TreeJob> shared_jobs(
      4, congest::TreeJob{&shared, packets, 0});
  const auto res_shared = congest::schedule_tree_broadcasts(g, shared_jobs);

  // Disjoint case: each job alone on its own part.
  std::uint64_t disjoint_makespan = 0;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    if (!ok[i]) continue;
    std::vector<congest::TreeJob> solo{{&trees[i], packets, 0}};
    const auto r = congest::schedule_tree_broadcasts(partition.parts[i].graph,
                                                     solo);
    disjoint_makespan = std::max(disjoint_makespan, r.makespan);
  }
  Table table({"configuration", "makespan"});
  table.add_row({"4 jobs, one shared tree",
                 Table::num(std::size_t{res_shared.makespan})});
  table.add_row({"4 jobs, edge-disjoint trees (Thm 2)",
                 Table::num(std::size_t{disjoint_makespan})});
  table.print(std::cout);
}

// --graph=<spec> override: Theorem 12 co-scheduling on caller-chosen
// scenarios; --jobs=<J> (default 8) BFS-tree jobs of --packets=<p>
// (default 32) packets each.
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      const Options& opts) {
  const auto jobs = static_cast<std::uint32_t>(opts.get_int("jobs", 8));
  const auto packets = static_cast<std::uint32_t>(opts.get_int("packets", 32));
  banner("E10 on custom scenarios",
         "co-scheduled tree broadcasts on --graph=<spec> workloads: "
         "makespan vs max(C, d) and the C + d log^2 n envelope.");
  Table table({"graph", "n", "congestion C", "dilation d",
               "makespan (no delay)", "makespan (rand delay)", "LB max(C,d)",
               "C + d*log2^2 n"});
  Rng rng(81);
  for (const auto& [name, g] : graphs) {
    if (!is_connected(g)) {
      std::cout << "skipping " << name
                << ": tree jobs need a connected graph\n";
      continue;
    }
    std::vector<algo::SpanningTree> trees;
    trees.reserve(jobs);
    for (std::uint32_t j = 0; j < jobs; ++j)
      trees.push_back(
          algo::run_bfs(g, static_cast<NodeId>(rng.below(g.node_count())))
              .tree);
    std::vector<congest::TreeJob> naive, delayed;
    for (std::uint32_t j = 0; j < jobs; ++j) {
      naive.push_back({&trees[j], packets, 0});
      delayed.push_back({&trees[j], packets, 0});
    }
    const auto res_naive = congest::schedule_tree_broadcasts(g, naive);
    congest::randomize_delays(delayed, res_naive.congestion / 2 + 1, rng);
    const auto res_delay = congest::schedule_tree_broadcasts(g, delayed);
    const double log2n = std::log2(static_cast<double>(g.node_count()));
    table.add_row(
        {name, Table::num(std::size_t{g.node_count()}),
         Table::num(std::size_t{res_naive.congestion}),
         Table::num(std::size_t{res_naive.dilation}),
         Table::num(std::size_t{res_naive.makespan}),
         Table::num(std::size_t{res_delay.makespan}),
         Table::num(std::max(res_naive.congestion, res_naive.dilation)),
         Table::num(res_naive.congestion +
                        res_naive.dilation * log2n * log2n,
                    0)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_scheduler", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_e10();
  fc::bench::experiment_e10_disjoint_vs_shared();
  return 0;
}
