// Experiment E14 (Appendix A, Lemma 9): every simple graph with edge
// connectivity lambda and minimum degree delta is (lambda/5, 16n/delta)-
// connected. We certify it with the greedy bounded-length disjoint-path
// packing (a lower bound on the true packing number) over random pairs on
// each family, and report how much slack the bound has in practice.

#include "bench_common.hpp"

#include "graph/kd_connectivity.hpp"
#include "graph/mincut.hpp"

namespace fc::bench {
namespace {

void experiment_e14() {
  banner("E14 / Appendix A (Lemma 9)",
         "greedy certificate for (lambda/5, 16n/delta)-connectivity; "
         "min paths found must beat lambda/5 and path lengths must stay "
         "under 16n/delta on every sampled pair.");
  Table table({"graph", "lambda", "delta", "need l/5", "min paths found",
               "len cap 16n/d", "longest used", "holds"});
  Rng rng(101);

  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  {
    Rng g_rng = rng.fork(1);
    cases.push_back({"regular(128,16)", gen::random_regular(128, 16, g_rng)});
  }
  cases.push_back({"circulant(120,6)", gen::circulant(120, 6)});
  cases.push_back({"hypercube(7)", gen::hypercube(7)});
  cases.push_back({"thick_path(12,6)", gen::thick_path(12, 6)});
  cases.push_back({"dumbbell(40,4)", gen::dumbbell(40, 4)});
  cases.push_back({"margulis(11)", gen::margulis_expander(11)});

  for (auto& c : cases) {
    const std::uint32_t lambda = edge_connectivity(c.g);
    const std::uint32_t delta = min_degree(c.g);
    Rng pair_rng = rng.fork(mix64(lambda, delta));
    const auto check = check_lemma9(c.g, lambda, delta, 20, pair_rng);
    table.add_row({c.name, Table::num(std::size_t{lambda}),
                   Table::num(std::size_t{delta}),
                   Table::num(check.required_paths, 1),
                   Table::num(std::size_t{check.min_paths}),
                   Table::num(check.allowed_length, 0),
                   Table::num(std::size_t{check.max_length_used}),
                   check.holds() ? "yes" : "NO"});
  }
  table.print(std::cout);
}

// --graph=<spec> override: the Lemma 9 certificate on caller-chosen
// scenarios; --pairs=<count> sampled pairs (default 20).
void experiment_specs(const std::vector<NamedGraph>& graphs,
                      const Options& opts) {
  const auto pairs = static_cast<std::size_t>(opts.get_int("pairs", 20));
  banner("E14 on custom scenarios",
         "greedy (lambda/5, 16n/delta)-connectivity certificate on "
         "--graph=<spec> workloads.");
  Table table({"graph", "lambda", "delta", "need l/5", "min paths found",
               "len cap 16n/d", "longest used", "holds"});
  Rng rng(101);
  for (const auto& [name, g] : graphs) {
    const auto lambda = spec_lambda(opts, g);
    if (lambda.value == 0) {
      std::cout << "skipping " << name << ": disconnected (lambda = 0)\n";
      continue;
    }
    const std::uint32_t delta = min_degree(g);
    Rng pair_rng = rng.fork(mix64(lambda.value, delta));
    const auto check =
        check_lemma9(g, lambda.value, delta, pairs, pair_rng);
    table.add_row({name, lambda_str(lambda), Table::num(std::size_t{delta}),
                   Table::num(check.required_paths, 1),
                   Table::num(std::size_t{check.min_paths}),
                   Table::num(check.allowed_length, 0),
                   Table::num(std::size_t{check.max_length_used}),
                   check.holds() ? "yes" : "NO"});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fc::bench

int main(int argc, char** argv) {
  if (const auto rc = fc::bench::spec_mode(
          "bench_appendix", argc, argv, [&](const auto& graphs) {
            fc::bench::experiment_specs(graphs, fc::Options(argc, argv));
          }))
    return *rc;
  fc::bench::experiment_e14();
  return 0;
}
