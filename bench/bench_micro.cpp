// Microbenchmarks (google-benchmark) of the substrate primitives: simulator
// round throughput, distributed BFS, partitioning, spanner construction,
// exact min cut. These are engineering benchmarks (items/sec), not paper
// experiments; they guard the simulator's O(active + messages) round cost.
//
// --graph=<spec> (repeatable, with optional --cache=<dir>) switches to
// spec mode: per scenario graph it registers CSR-construction benchmarks —
// the serial reference vs the parallel build at 1/2/4/8 pool threads — and
// a distributed-BFS throughput benchmark. Spec flags are split off before
// google-benchmark parses the remaining (its own) flags.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/leader_election.hpp"
#include "algo/pipeline_broadcast.hpp"
#include "apps/spanner.hpp"
#include "bench_common.hpp"
#include "core/fast_broadcast.hpp"
#include "graph/generators.hpp"
#include "graph/mincut.hpp"
#include "graph/partition.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fc;

void BM_GraphConstruction(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  const Graph g = gen::random_regular(n, 16, rng);
  const auto edges = g.edge_list();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Graph::from_edges(n, edges));
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}
BENCHMARK(BM_GraphConstruction)->Arg(1024)->Arg(4096);

void BM_DistributedBfs(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  const Graph g = gen::random_regular(n, 16, rng);
  for (auto _ : state) {
    auto out = algo::run_bfs(g, 0);
    benchmark::DoNotOptimize(out.tree.depth);
  }
  state.SetItemsProcessed(state.iterations() * g.arc_count());
}
BENCHMARK(BM_DistributedBfs)->Arg(1024)->Arg(4096);

void BM_PipelineBroadcast(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::uint64_t k = static_cast<std::uint64_t>(state.range(1));
  Rng rng(3);
  const Graph g = gen::random_regular(n, 16, rng);
  const auto tree = algo::run_bfs(g, 0).tree;
  std::vector<algo::PlacedMessage> msgs;
  for (std::uint64_t i = 0; i < k; ++i)
    msgs.push_back({static_cast<NodeId>(rng.below(n)), i, rng()});
  for (auto _ : state) {
    congest::Network net(g);
    algo::PipelineBroadcast alg(g, tree, msgs);
    const auto res = net.run(alg);
    benchmark::DoNotOptimize(res.rounds);
  }
  state.SetItemsProcessed(state.iterations() * k * n);
}
BENCHMARK(BM_PipelineBroadcast)->Args({512, 512})->Args({1024, 2048});

void BM_FastBroadcast(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  const Graph g = gen::random_regular(n, 32, rng);
  std::vector<algo::PlacedMessage> msgs;
  for (std::uint64_t i = 0; i < 4ull * n; ++i)
    msgs.push_back({static_cast<NodeId>(rng.below(n)), i, rng()});
  for (auto _ : state) {
    const auto report = core::run_fast_broadcast(g, 32, msgs);
    benchmark::DoNotOptimize(report.total_rounds);
  }
  state.SetItemsProcessed(state.iterations() * msgs.size() * n);
}
BENCHMARK(BM_FastBroadcast)->Arg(512);

void BM_EdgePartition(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  const Graph g = gen::random_regular(n, 32, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_edge_partition(g, 6, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}
BENCHMARK(BM_EdgePartition)->Arg(1024)->Arg(4096);

void BM_BaswanaSen(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(6);
  const auto g = gen::with_unit_weights(gen::random_regular(n, 16, rng));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::baswana_sen(g, 3, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * g.graph().edge_count());
}
BENCHMARK(BM_BaswanaSen)->Arg(1024)->Arg(4096);

void BM_StoerWagner(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(7);
  const auto g = gen::with_unit_weights(gen::random_regular(n, 8, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoer_wagner_mincut(g));
  }
}
BENCHMARK(BM_StoerWagner)->Arg(64)->Arg(128);

void BM_LeaderElection(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(8);
  const Graph g = gen::random_regular(n, 16, rng);
  for (auto _ : state) {
    congest::Network net(g);
    algo::LeaderElection alg(g);
    const auto res = net.run(alg);
    benchmark::DoNotOptimize(res.rounds);
  }
  state.SetItemsProcessed(state.iterations() * g.arc_count());
}
BENCHMARK(BM_LeaderElection)->Arg(1024)->Arg(4096);

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

void register_spec_benchmarks(const fc::bench::NamedGraph& named) {
  const auto edges = std::make_shared<EdgeList>(named.graph.edge_list());
  const NodeId n = named.graph.node_count();
  const auto items = static_cast<std::int64_t>(edges->size());

  benchmark::RegisterBenchmark(
      ("SPEC/FromEdgesSerial/" + named.name).c_str(),
      [edges, n, items](benchmark::State& state) {
        for (auto _ : state)
          benchmark::DoNotOptimize(Graph::from_edges_serial(n, *edges));
        state.SetItemsProcessed(state.iterations() * items);
      });
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    benchmark::RegisterBenchmark(
        ("SPEC/FromEdgesParallel/" + named.name + "/threads:" +
         std::to_string(threads))
            .c_str(),
        [edges, n, items, threads](benchmark::State& state) {
          ThreadPool pool(threads);
          for (auto _ : state)
            benchmark::DoNotOptimize(Graph::from_edges(n, *edges, pool));
          state.SetItemsProcessed(state.iterations() * items);
        });
  }

  const auto graph = std::make_shared<Graph>(named.graph);
  benchmark::RegisterBenchmark(
      ("SPEC/DistributedBfs/" + named.name).c_str(),
      [graph](benchmark::State& state) {
        for (auto _ : state) {
          auto out = algo::run_bfs(*graph, 0);
          benchmark::DoNotOptimize(out.tree.depth);
        }
        state.SetItemsProcessed(state.iterations() * graph->arc_count());
      });
}

}  // namespace

int main(int argc, char** argv) {
  // Spec flags are ours; everything else belongs to google-benchmark.
  std::vector<char*> spec_argv{argv[0]};
  std::vector<char*> gb_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const bool ours = std::strncmp(argv[i], "--graph=", 8) == 0 ||
                      std::strncmp(argv[i], "--cache=", 8) == 0;
    (ours ? spec_argv : gb_argv).push_back(argv[i]);
  }
  try {
    const auto custom = fc::bench::spec_graphs(
        static_cast<int>(spec_argv.size()), spec_argv.data());
    for (const auto& named : custom) register_spec_benchmarks(named);
    if (!custom.empty()) {
      // Spec mode: default the filter to the per-graph benchmarks (not the
      // built-in grid), but let an explicit --benchmark_filter win.
      bool has_filter = false;
      for (const char* arg : gb_argv)
        has_filter = has_filter ||
                     std::strncmp(arg, "--benchmark_filter=", 19) == 0;
      std::vector<char*> filtered = gb_argv;
      std::string filter = "--benchmark_filter=^SPEC/";
      if (!has_filter) filtered.push_back(filter.data());
      auto gb_argc = static_cast<int>(filtered.size());
      benchmark::Initialize(&gb_argc, filtered.data());
      // Same fail-fast contract as BENCHMARK_MAIN: a typo'd flag must not
      // silently change the experiment.
      if (benchmark::ReportUnrecognizedArguments(gb_argc, filtered.data()))
        return 1;
      benchmark::RunSpecifiedBenchmarks();
      return 0;
    }
  } catch (const std::exception& err) {
    std::cerr << "bench_micro: " << err.what() << "\n";
    return 2;
  }
  auto gb_argc = static_cast<int>(gb_argv.size());
  benchmark::Initialize(&gb_argc, gb_argv.data());
  if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_argv.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
