// Microbenchmarks (google-benchmark) of the substrate primitives: simulator
// round throughput, distributed BFS, partitioning, spanner construction,
// exact min cut. These are engineering benchmarks (items/sec), not paper
// experiments; they guard the simulator's O(active + messages) round cost.

#include <benchmark/benchmark.h>

#include "algo/bfs.hpp"
#include "algo/leader_election.hpp"
#include "algo/pipeline_broadcast.hpp"
#include "apps/spanner.hpp"
#include "core/fast_broadcast.hpp"
#include "graph/generators.hpp"
#include "graph/mincut.hpp"
#include "graph/partition.hpp"
#include "util/rng.hpp"

namespace {

using namespace fc;

void BM_GraphConstruction(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  const Graph g = gen::random_regular(n, 16, rng);
  const auto edges = g.edge_list();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Graph::from_edges(n, edges));
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}
BENCHMARK(BM_GraphConstruction)->Arg(1024)->Arg(4096);

void BM_DistributedBfs(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  const Graph g = gen::random_regular(n, 16, rng);
  for (auto _ : state) {
    auto out = algo::run_bfs(g, 0);
    benchmark::DoNotOptimize(out.tree.depth);
  }
  state.SetItemsProcessed(state.iterations() * g.arc_count());
}
BENCHMARK(BM_DistributedBfs)->Arg(1024)->Arg(4096);

void BM_PipelineBroadcast(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const std::uint64_t k = static_cast<std::uint64_t>(state.range(1));
  Rng rng(3);
  const Graph g = gen::random_regular(n, 16, rng);
  const auto tree = algo::run_bfs(g, 0).tree;
  std::vector<algo::PlacedMessage> msgs;
  for (std::uint64_t i = 0; i < k; ++i)
    msgs.push_back({static_cast<NodeId>(rng.below(n)), i, rng()});
  for (auto _ : state) {
    congest::Network net(g);
    algo::PipelineBroadcast alg(g, tree, msgs);
    const auto res = net.run(alg);
    benchmark::DoNotOptimize(res.rounds);
  }
  state.SetItemsProcessed(state.iterations() * k * n);
}
BENCHMARK(BM_PipelineBroadcast)->Args({512, 512})->Args({1024, 2048});

void BM_FastBroadcast(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  const Graph g = gen::random_regular(n, 32, rng);
  std::vector<algo::PlacedMessage> msgs;
  for (std::uint64_t i = 0; i < 4ull * n; ++i)
    msgs.push_back({static_cast<NodeId>(rng.below(n)), i, rng()});
  for (auto _ : state) {
    const auto report = core::run_fast_broadcast(g, 32, msgs);
    benchmark::DoNotOptimize(report.total_rounds);
  }
  state.SetItemsProcessed(state.iterations() * msgs.size() * n);
}
BENCHMARK(BM_FastBroadcast)->Arg(512);

void BM_EdgePartition(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  const Graph g = gen::random_regular(n, 32, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_edge_partition(g, 6, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}
BENCHMARK(BM_EdgePartition)->Arg(1024)->Arg(4096);

void BM_BaswanaSen(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(6);
  const auto g = gen::with_unit_weights(gen::random_regular(n, 16, rng));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::baswana_sen(g, 3, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * g.graph().edge_count());
}
BENCHMARK(BM_BaswanaSen)->Arg(1024)->Arg(4096);

void BM_StoerWagner(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(7);
  const auto g = gen::with_unit_weights(gen::random_regular(n, 8, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoer_wagner_mincut(g));
  }
}
BENCHMARK(BM_StoerWagner)->Arg(64)->Arg(128);

void BM_LeaderElection(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(8);
  const Graph g = gen::random_regular(n, 16, rng);
  for (auto _ : state) {
    congest::Network net(g);
    algo::LeaderElection alg(g);
    const auto res = net.run(alg);
    benchmark::DoNotOptimize(res.rounds);
  }
  state.SetItemsProcessed(state.iterations() * g.arc_count());
}
BENCHMARK(BM_LeaderElection)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
